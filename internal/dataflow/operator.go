package dataflow

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/state"
)

// OpContext carries per-subtask information into Operator.Open.
type OpContext struct {
	NodeID      int
	NodeName    string
	Subtask     int
	Parallelism int
	// NumKeyGroups is the plan's key-group count (<= 0 means the default),
	// from which the subtask's owned group range derives.
	NumKeyGroups int
	// Metrics is the job's registry, or nil when metrics are disabled.
	// Operators may register their own instruments under "node.<name>.".
	Metrics *metrics.Registry
	// Restore holds the subtask's non-keyed state blob from the recovery
	// snapshot, or nil on a fresh start.
	Restore []byte
	// RestoreGroups holds the recovery snapshot's keyed-state blobs for the
	// key groups this subtask owns *now* — written by whatever subtask
	// ranges the checkpointing job ran with. Nil on a fresh start.
	RestoreGroups map[int][]byte
	// LocalSubtasks lists the node's subtasks running in this process. Nil
	// (single-process execution) means all of them. Stage-shared resources
	// — in particular the dynamic split queue of at-rest scans — use it to
	// partition work that would otherwise be claimed twice across
	// participants of a distributed run.
	LocalSubtasks []int
}

// NewKeyedState builds the subtask's keyed-state container for the plan's
// key-group settings. Zero-value contexts (direct operator tests) get
// parallelism 1 and the default group count, owning every group.
func (ctx *OpContext) NewKeyedState() *state.KeyedState {
	ng := ctx.NumKeyGroups
	if ng <= 0 {
		ng = state.DefaultNumKeyGroups
	}
	par := ctx.Parallelism
	if par <= 0 {
		par = 1
	}
	start, end := state.GroupRangeFor(ng, par, ctx.Subtask)
	return state.NewKeyedState(ng, start, end)
}

// RestoreKeyedState loads the recovery snapshot's group blobs into ks. Call
// it after every cell is registered. A legacy per-subtask blob (snapshots
// written before keyed state moved to key groups) is an error rather than
// silent state loss.
func (ctx *OpContext) RestoreKeyedState(ks *state.KeyedState) error {
	if ctx.Restore != nil {
		return fmt.Errorf("dataflow: %q/%d: snapshot holds per-subtask keyed state (pre-key-group format); it cannot be restored", ctx.NodeName, ctx.Subtask)
	}
	for g, blob := range ctx.RestoreGroups {
		if err := ks.RestoreGroup(g, blob); err != nil {
			return fmt.Errorf("dataflow: %q/%d: %w", ctx.NodeName, ctx.Subtask, err)
		}
	}
	return nil
}

// KeyedStateful is implemented by operators keeping their per-key state in
// a state.KeyedState. The runtime snapshots them per key group with the
// asynchronous copy-on-write protocol — capture at the barrier, serialize
// off the hot path — instead of the synchronous per-subtask Snapshot blob
// (which such operators use only for residual non-keyed state, usually
// returning nil).
type KeyedStateful interface {
	KeyedState() *state.KeyedState
}

// Collector receives records an operator emits downstream. Operators may
// emit from OnRecord, OnWatermark and Finish. Watermarks, barriers and end
// markers are forwarded by the runtime — operators emit only data records.
type Collector interface {
	Collect(r Record)
}

// BatchedOperator is the vectorized fast path of the operator contract.
// When every operator of a fused chain implements it, the chain driver hands
// whole exchange batches through the chain instead of dispatching one
// OnRecord call per record.
//
// OnBatch receives a contiguous run of data records — never watermarks,
// barriers or end markers; the runtime splits batches at control records so
// event-time and alignment ordering are untouched — and returns the records
// to forward downstream. Implementations may compact b in place and return
// it (maps overwrite slots, filters delete by copy-down) or return an
// internal scratch buffer that stays valid until the next OnBatch call
// (flatmaps, whose output cardinality differs from the input's). Stateful
// operators that emit on internal triggers may also collect through out —
// out-collected records are delivered before the returned ones. Returning
// an empty slice (or nil) forwards nothing.
//
// The semantics must be exactly OnRecord applied to each record in order:
// the runtime treats the two paths as interchangeable (identical results at
// any batch size, with batching on or off).
type BatchedOperator interface {
	Operator
	OnBatch(b []Record, out Collector) []Record
}

// Operator is one subtask instance of a dataflow operator. Instances are
// never shared between subtasks, so implementations need no internal
// locking.
type Operator interface {
	// Open initializes the subtask, restoring state from ctx.Restore when
	// recovering.
	Open(ctx *OpContext) error
	// OnRecord processes one data record.
	OnRecord(r Record, out Collector)
	// OnWatermark observes the subtask's event-time advance (the minimum
	// across all input channels).
	OnWatermark(wm int64, out Collector)
	// Snapshot serializes the subtask's state for a checkpoint barrier.
	Snapshot() ([]byte, error)
	// Finish is called when all inputs have ended (bounded execution);
	// operators flush their remaining results here.
	Finish(out Collector)
}

// Base is a convenience embedding providing no-op Operator methods.
type Base struct{}

// Open implements Operator.
func (Base) Open(*OpContext) error { return nil }

// OnRecord implements Operator.
func (Base) OnRecord(Record, Collector) {}

// OnWatermark implements Operator.
func (Base) OnWatermark(int64, Collector) {}

// Snapshot implements Operator.
func (Base) Snapshot() ([]byte, error) { return nil, nil }

// Finish implements Operator.
func (Base) Finish(Collector) {}

// MapOp applies F to every data record. Stateless.
type MapOp struct {
	Base
	F func(Record) Record
}

// OnRecord implements Operator.
func (m *MapOp) OnRecord(r Record, out Collector) { out.Collect(m.F(r)) }

// OnBatch implements BatchedOperator: every slot is overwritten in place.
func (m *MapOp) OnBatch(b []Record, _ Collector) []Record {
	for i := range b {
		b[i] = m.F(b[i])
	}
	return b
}

// FilterOp forwards records for which F returns true. Stateless.
type FilterOp struct {
	Base
	F func(Record) bool
}

// OnRecord implements Operator.
func (f *FilterOp) OnRecord(r Record, out Collector) {
	if f.F(r) {
		out.Collect(r)
	}
}

// OnBatch implements BatchedOperator: survivors compact to the front of the
// batch by copy-down.
func (f *FilterOp) OnBatch(b []Record, _ Collector) []Record {
	keep := 0
	for i := range b {
		if f.F(b[i]) {
			if keep != i {
				b[keep] = b[i]
			}
			keep++
		}
	}
	return b[:keep]
}

// FlatMapOp applies F, which may emit zero or more records. Stateless.
type FlatMapOp struct {
	Base
	F func(Record, Collector)

	scratch sliceCollector // batch-mode emission buffer, reused across calls
}

// OnRecord implements Operator.
func (f *FlatMapOp) OnRecord(r Record, out Collector) { f.F(r, out) }

// OnBatch implements BatchedOperator. A flatmap's output cardinality differs
// from its input's, so emissions collect into a reused scratch buffer rather
// than compacting in place; the scratch is valid until the next call, and
// the previous batch's payloads are released before reuse so the buffer does
// not pin them.
func (f *FlatMapOp) OnBatch(b []Record, _ Collector) []Record {
	clear(f.scratch.buf)
	f.scratch.buf = f.scratch.buf[:0]
	for i := range b {
		f.F(b[i], &f.scratch)
	}
	return f.scratch.buf
}

// sliceCollector accumulates collected records in a slice — the scratch
// target batch-mode flatmaps emit into.
type sliceCollector struct{ buf []Record }

// Collect implements Collector.
func (s *sliceCollector) Collect(r Record) { s.buf = append(s.buf, r) }

// KeyedReduceOp maintains a float64 accumulator per key, combining values
// with F. With EmitEach it emits the updated accumulator for every input
// (continuous results); otherwise it emits one record per key on Finish
// (bounded/batch results). Keyed state lives in a state.KeyedState, so the
// operator checkpoints per key group and restores at any parallelism.
type KeyedReduceOp struct {
	Base
	F        func(acc, v float64) float64
	Init     float64
	EmitEach bool

	ks  *state.KeyedState
	acc *state.MapCell[float64]

	// Vectorized-run scratch, reused across OnBatch calls.
	kt   keyTable
	accs []float64               // dense index -> running accumulator
	refs []state.KeyRef[float64] // dense index -> resolved cell slot
}

var _ KeyedStateful = (*KeyedReduceOp)(nil)

// Open implements Operator.
func (k *KeyedReduceOp) Open(ctx *OpContext) error {
	k.ks = ctx.NewKeyedState()
	k.acc = state.RegisterMap(k.ks, "acc", state.GobCodec[float64]())
	return ctx.RestoreKeyedState(k.ks)
}

// KeyedState implements KeyedStateful.
func (k *KeyedReduceOp) KeyedState() *state.KeyedState { return k.ks }

// OnRecord implements Operator.
func (k *KeyedReduceOp) OnRecord(r Record, out Collector) {
	v, ok := r.Value.(float64)
	if !ok {
		return
	}
	acc, exists := k.acc.Get(r.Key)
	if !exists {
		acc = k.Init
	}
	acc = k.F(acc, v)
	k.acc.Put(r.Key, acc)
	if k.EmitEach {
		out.Collect(Data(r.Ts, r.Key, acc))
	}
}

// OnBatch implements BatchedOperator: the run is folded through a dense
// scratch table — one cell read (and one key-group hash) per distinct key on
// first touch, one cell write per distinct key at the end — instead of a
// Get/Put pair per record. Records are visited in order and EmitEach
// emissions overwrite the batch in place, so the output sequence is
// byte-identical to OnRecord-in-order; deferring the writes is invisible
// because barriers split runs, so no snapshot can observe mid-run state.
func (k *KeyedReduceOp) OnBatch(b []Record, _ Collector) []Record {
	k.kt.reset()
	k.accs = k.accs[:0]
	k.refs = k.refs[:0]
	keep := 0
	for i := range b {
		v, ok := b[i].Value.(float64)
		if !ok {
			continue
		}
		idx, fresh := k.kt.index(b[i].Key)
		if fresh {
			ref := k.acc.RefFor(b[i].Key)
			acc, exists := ref.Get()
			if !exists {
				acc = k.Init
			}
			k.accs = append(k.accs, acc)
			k.refs = append(k.refs, ref)
		}
		acc := k.F(k.accs[idx], v)
		k.accs[idx] = acc
		if k.EmitEach {
			b[keep] = Data(b[i].Ts, b[i].Key, acc)
			keep++
		}
	}
	for i := range k.refs {
		k.refs[i].Put(k.accs[i])
	}
	if !k.EmitEach {
		return nil
	}
	return b[:keep]
}

// Finish implements Operator.
func (k *KeyedReduceOp) Finish(out Collector) {
	if k.EmitEach {
		return
	}
	for _, key := range k.acc.SortedKeys() {
		v, _ := k.acc.Get(key)
		out.Collect(Data(0, key, v))
	}
}

// FuncSink invokes F for every data record; terminal node.
type FuncSink struct {
	Base
	F func(Record)
	// OnWM, if set, is additionally invoked for watermarks.
	OnWM func(int64)
}

// OnRecord implements Operator.
func (s *FuncSink) OnRecord(r Record, _ Collector) { s.F(r) }

// OnBatch implements BatchedOperator; a sink forwards nothing.
func (s *FuncSink) OnBatch(b []Record, _ Collector) []Record {
	for i := range b {
		s.F(b[i])
	}
	return nil
}

// OnWatermark implements Operator.
func (s *FuncSink) OnWatermark(wm int64, _ Collector) {
	if s.OnWM != nil {
		s.OnWM(wm)
	}
}

// CollectSink accumulates all data records; safe for concurrent subtasks
// and for reading after Run returns. Intended for tests and examples.
//
// The sink checkpoints its collected count (not the values): a restored run
// in the same process — the supervised-restart path, where the instance
// survives across epochs — rolls back to the checkpointed length before
// replay, keeping the collected output exactly-once. A fresh process
// restoring the same snapshot starts from an empty sink (the values only
// ever lived in the crashed process's memory) and the rollback is a no-op.
type CollectSink struct {
	Base
	mu   sync.Mutex
	recs []Record
}

// Open implements Operator: roll back to the restored count, or clear on a
// from-scratch (re)start — either way the sink holds exactly the records
// the resumed stream position has already produced.
func (s *CollectSink) Open(ctx *OpContext) error {
	n := 0
	if ctx.Restore != nil {
		c, _ := binary.Varint(ctx.Restore)
		n = int(c)
	}
	s.mu.Lock()
	if n < len(s.recs) {
		s.recs = s.recs[:n]
	}
	s.mu.Unlock()
	return nil
}

// Snapshot implements Operator: the blob is the collected record count.
func (s *CollectSink) Snapshot() ([]byte, error) {
	s.mu.Lock()
	n := len(s.recs)
	s.mu.Unlock()
	buf := make([]byte, binary.MaxVarintLen64)
	return buf[:binary.PutVarint(buf, int64(n))], nil
}

// OnRecord implements Operator.
func (s *CollectSink) OnRecord(r Record, _ Collector) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

// OnBatch implements BatchedOperator: one lock acquisition per batch.
func (s *CollectSink) OnBatch(b []Record, _ Collector) []Record {
	s.mu.Lock()
	s.recs = append(s.recs, b...)
	s.mu.Unlock()
	return nil
}

// Records returns a copy of everything collected so far.
func (s *CollectSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// Factory returns an OperatorFactory handing every subtask this same sink
// (the sink locks internally).
func (s *CollectSink) Factory() OperatorFactory {
	return func() Operator { return s }
}
