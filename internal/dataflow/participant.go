package dataflow

import (
	"context"
	"sync"

	"repro/internal/state"
)

// Distributed execution splits one job across participants: participant 0 is
// the coordinator process (it also runs subtasks — in particular every pinned
// node), participants 1..W are workers. The model is SPMD: every participant
// builds the identical Graph from code (operator factories hold closures and
// cannot travel), and only the structural plan, the placement map, and the
// recovery snapshot cross the wire. Each participant then executes exactly
// the subtasks the placement assigns to it via Job.RunParticipant; exchange
// edges whose endpoints land on different participants are carried by an
// EdgeTransport instead of a direct Go channel.

// ChannelRef identifies one physical exchange channel of a job: the edge
// (consumer node + input-edge index) and the (consumer subtask, producer
// subtask) pair. Every physical channel has exactly one producer subtask and
// one consumer subtask, so a ChannelRef names a single-writer, single-reader
// stream — the property that lets a transport preserve per-channel ordering
// (and with it ABS barrier alignment) by simple FIFO delivery.
type ChannelRef struct {
	Node int // consumer node ID
	Edge int // index into the consumer node's In edges
	To   int // consumer subtask
	From int // producer subtask
}

// Placement maps node ID -> subtask -> participant index (0 = coordinator).
// Chained nodes run inside their chain head's goroutine, so only chain-head
// entries drive execution; ComputePlacement fills chained nodes with their
// head's row for readability.
type Placement map[int][]int

// EdgeTransport provides the physical channel for an exchange edge whose
// endpoints may live on different participants. Both methods return a
// batch channel carrying the same pooled []Record batches local edges use:
// Inbound is called by the consumer's participant for each remote-producer
// channel, Outbound by the producer's participant for each remote-consumer
// channel. Control records (watermarks, barriers, end markers) travel
// in-order with data on the same channel, exactly as in-process.
type EdgeTransport interface {
	// Inbound returns the channel the local consumer subtask receives ref's
	// batches on. buf is the channel capacity in batches.
	Inbound(ref ChannelRef, buf int) chan []Record
	// Outbound returns the channel the local producer subtask ships ref's
	// batches into, destined for participant to.
	Outbound(ref ChannelRef, to int, buf int) chan []Record
}

// ChanTransport is the in-process EdgeTransport: both endpoints resolve a
// ChannelRef to the same Go channel, so a "remote" edge degenerates to
// exactly the channel a local edge would use — zero copies, no goroutines.
// It exists as the fast local case of the transport abstraction and lets
// multi-participant execution be exercised inside one process.
type ChanTransport struct {
	mu sync.Mutex
	m  map[ChannelRef]chan []Record
}

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{m: make(map[ChannelRef]chan []Record)}
}

func (t *ChanTransport) chanFor(ref ChannelRef, buf int) chan []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[ref]; ok {
		return c
	}
	c := make(chan []Record, buf)
	t.m[ref] = c
	return c
}

// Inbound implements EdgeTransport.
func (t *ChanTransport) Inbound(ref ChannelRef, buf int) chan []Record {
	return t.chanFor(ref, buf)
}

// Outbound implements EdgeTransport.
func (t *ChanTransport) Outbound(ref ChannelRef, to, buf int) chan []Record {
	return t.chanFor(ref, buf)
}

// Ack is one subtask's contribution to a checkpoint, surfaced to the
// distributed coordinator through Participation.Acks. Fields mirror the
// in-process ack: the per-subtask blob plus, for keyed operators, the
// asynchronously encoded per-key-group blobs.
type Ack struct {
	Ckpt   int64
	Key    state.SubtaskKey
	Blob   []byte
	Groups map[int][]byte
}

// Participation configures one participant's share of a distributed run.
type Participation struct {
	// Self is this participant's index (0 = coordinator).
	Self int
	// Placement assigns every (chain-head node, subtask) to a participant.
	// All participants must use the identical map.
	Placement Placement
	// Transport carries the exchange edges that cross participants.
	Transport EdgeTransport
	// Triggers delivers checkpoint IDs to inject as barriers at this
	// participant's local sources. Nil when checkpointing is disabled.
	Triggers <-chan int64
	// Acks receives every local subtask's checkpoint acknowledgements for
	// the coordinator to assemble. Nil when checkpointing is disabled.
	Acks chan<- Ack
	// OnRunning, if set, is called once after every local subtask is built
	// and launched — in particular after all inbound transport channels are
	// registered. The distributed protocol uses it to signal readiness
	// before any producer starts shipping remote batches.
	OnRunning func()
}

// RunParticipant executes this participant's share of the job: only subtasks
// the placement assigns to p.Self run locally, and cross-participant edges
// flow through p.Transport. It returns when all local subtasks finish, the
// context is cancelled, or a local subtask fails. Checkpoint coordination is
// external: barriers are injected via p.Triggers and acknowledgements
// surface on p.Acks (snapshot assembly and persistence are the distributed
// coordinator's job, not this participant's).
func (j *Job) RunParticipant(ctx context.Context, p *Participation) error {
	return j.run(ctx, p)
}

// LocalOnlySource marks sources whose data exists only in the process that
// built the graph — live channels feeding in-motion records. Placement pins
// such nodes (and their chains) to the coordinator participant; shipping
// them to a worker would read from an unconnected copy of the channel.
type LocalOnlySource interface {
	SourceLocalOnly() bool
}

// sourceLocalOnly probes a source node for the LocalOnlySource capability.
// Factories are cheap and side-effect-free until first read (validateRestore
// relies on the same property).
func sourceLocalOnly(n *Node) bool {
	if n.NewSource == nil {
		return false
	}
	lo, ok := n.NewSource(0, n.Parallelism).(LocalOnlySource)
	return ok && lo.SourceLocalOnly()
}

// ComputePlacement assigns every (chain head, subtask) of the graph to a
// participant: pinned chains (terminal sinks, live sources) go to the
// coordinator (participant 0), everything else round-robins across workers
// 1..workers so parallel subtasks of one node land on different processes.
// workers == 0 places everything on the coordinator. The function is
// deterministic: coordinator and workers compute or receive the same map.
func ComputePlacement(g *Graph, chaining bool, workers int) Placement {
	ci := buildChains(g, chaining)
	pl := make(Placement, len(g.nodes))
	for _, n := range g.nodes {
		pl[n.ID] = make([]int, n.Parallelism)
	}
	// A chain is pinned when any of its nodes is: the whole chain runs in
	// one goroutine, so pinning is a chain-level property.
	pinnedChain := func(h *Node) bool {
		if h.Pinned || sourceLocalOnly(h) {
			return true
		}
		for _, cn := range ci.links[h] {
			if cn.Pinned {
				return true
			}
		}
		return false
	}
	next := 0
	for _, n := range g.nodes {
		if ci.head[n] != n {
			continue
		}
		pinned := pinnedChain(n)
		for s := 0; s < n.Parallelism; s++ {
			w := 0
			if !pinned && workers > 0 {
				w = next%workers + 1
				next++
			}
			pl[n.ID][s] = w
		}
	}
	for _, n := range g.nodes {
		if h := ci.head[n]; h != n {
			copy(pl[n.ID], pl[h.ID])
		}
	}
	return pl
}

// TotalSubtasks counts subtasks across all nodes — the number of acks a
// complete checkpoint must assemble (chained nodes share a goroutine but
// still snapshot separately).
func (g *Graph) TotalSubtasks() int { return g.totalSubtasks() }

// KeyGroups returns the graph's normalized key-group count — distributed
// snapshot assembly stamps it on the assembled state.Snapshot.
func (g *Graph) KeyGroups() int { return g.numKeyGroups() }
