package agg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sumTree(cap int) *FlatFAT[int] {
	return NewFlatFAT(0, func(a, b int) int { return a + b }, cap)
}

func TestFlatFATEmpty(t *testing.T) {
	tr := sumTree(4)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.Aggregate(); got != 0 {
		t.Fatalf("empty aggregate = %d", got)
	}
	if got := tr.Range(0, 0); got != 0 {
		t.Fatalf("empty range = %d", got)
	}
}

func TestFlatFATAppendAggregate(t *testing.T) {
	tr := sumTree(4)
	total := 0
	for i := 1; i <= 100; i++ {
		tr.Append(i)
		total += i
		if got := tr.Aggregate(); got != total {
			t.Fatalf("after %d appends aggregate = %d, want %d", i, got, total)
		}
	}
}

func TestFlatFATEvict(t *testing.T) {
	tr := sumTree(2)
	for i := 1; i <= 10; i++ {
		tr.Append(i)
	}
	for i := 1; i <= 9; i++ {
		tr.EvictFront()
		want := 0
		for j := i + 1; j <= 10; j++ {
			want += j
		}
		if got := tr.Aggregate(); got != want {
			t.Fatalf("after evicting %d: aggregate = %d, want %d", i, got, want)
		}
	}
}

func TestFlatFATRingWraps(t *testing.T) {
	tr := sumTree(4) // capacity stays 4 if we keep size <= 4
	// Fill, evict, append repeatedly so front walks around the ring.
	tr.Append(1)
	tr.Append(2)
	tr.Append(3)
	tr.Append(4)
	for i := 5; i < 40; i++ {
		tr.EvictFront()
		tr.Append(i)
		want := (i - 2) + (i - 1) + i + (i - 3)
		if got := tr.Aggregate(); got != want {
			t.Fatalf("i=%d aggregate=%d want %d", i, got, want)
		}
	}
}

func TestFlatFATUpdateBack(t *testing.T) {
	tr := sumTree(4)
	tr.Append(5)
	tr.Append(7)
	tr.UpdateBack(9)
	if got := tr.Aggregate(); got != 14 {
		t.Fatalf("aggregate = %d, want 14", got)
	}
	if got := tr.Back(); got != 9 {
		t.Fatalf("Back = %d, want 9", got)
	}
	if got := tr.Front(); got != 5 {
		t.Fatalf("Front = %d, want 5", got)
	}
}

func TestFlatFATPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"UpdateBack": func() { sumTree(2).UpdateBack(1) },
		"Back":       func() { sumTree(2).Back() },
		"Front":      func() { sumTree(2).Front() },
		"EvictFront": func() { sumTree(2).EvictFront() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty tree should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFlatFATRangeClamping(t *testing.T) {
	tr := sumTree(4)
	for i := 1; i <= 5; i++ {
		tr.Append(i)
	}
	if got := tr.Range(-3, 100); got != 15 {
		t.Fatalf("clamped range = %d, want 15", got)
	}
	if got := tr.Range(3, 2); got != 0 {
		t.Fatalf("inverted range = %d, want 0", got)
	}
}

// Property: FlatFAT range queries match the naive fold for random operation
// sequences, including growth and ring wrap-around, using a NON-commutative
// combine (string concatenation) to verify order preservation.
func TestFlatFATMatchesNaiveNonCommutative(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	f := func(ops []uint8, seed int64) bool {
		tr := NewFlatFAT("", concat, 2)
		na := NewNaive("", concat)
		rng := rand.New(rand.NewSource(seed))
		next := 'a'
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // append (biased so the window grows)
				s := string(rune('a' + (next-'a')%26))
				next++
				tr.Append(s)
				na.Append(s)
			case 2:
				if tr.Len() > 0 {
					tr.EvictFront()
					na.EvictFront()
				}
			}
			if tr.Len() != na.Len() {
				return false
			}
			if tr.Aggregate() != na.Aggregate() {
				return false
			}
			if tr.Len() > 0 {
				i := rng.Intn(tr.Len())
				j := i + rng.Intn(tr.Len()-i) + 1
				if tr.Range(i, j) != na.Range(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: FlatFAT over Acc partials matches a naive fold for all standard
// float64 functions.
func TestFlatFATMatchesNaiveAllFns(t *testing.T) {
	for _, name := range allStdF64 {
		fn := StdFnF64(name)
		f := func(xs []float64) bool {
			for i, v := range xs {
				if v != v || v > 1e100 || v < -1e100 {
					xs[i] = float64(i)
				}
			}
			tr := NewFlatFAT(fn.Identity, fn.Combine, 2)
			na := NewNaive(fn.Identity, fn.Combine)
			for _, v := range xs {
				tr.Append(fn.Lift(v))
				na.Append(fn.Lift(v))
			}
			return fn.Lower(tr.Aggregate()) == fn.Lower(na.Aggregate())
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFlatFATGrowthPreservesOrder(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	tr := NewFlatFAT("", concat, 2)
	var want strings.Builder
	for i := 0; i < 100; i++ {
		s := string(rune('a' + i%26))
		tr.Append(s)
		want.WriteString(s)
	}
	if got := tr.Aggregate(); got != want.String() {
		t.Fatalf("aggregate order broken after growth:\n got %q\nwant %q", got, want.String())
	}
}
