package dataflow

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/state"
)

// drainData pulls from a source until end of stream, returning the data
// records and the watermark values seen, in order.
func drainData(t *testing.T, src SourceFunc, limit int) (data []Record, wms []int64) {
	t.Helper()
	for i := 0; i < limit; i++ {
		r, ok := src.Next()
		if !ok {
			return data, wms
		}
		switch r.Kind {
		case KindData:
			data = append(data, r)
		case KindWatermark:
			wms = append(wms, r.Ts)
		}
	}
	t.Fatalf("source did not end within %d records", limit)
	return nil, nil
}

// GenSource restore must drop a pending watermark: the snapshot records the
// read position, and the watermark belonging to the pre-snapshot record
// must not resurface after recovery ahead of replayed data.
func TestGenSourcePendingWatermarkDroppedOnRestore(t *testing.T) {
	mk := func() *GenSource {
		return &GenSource{N: 10, WatermarkEvery: 1, Gen: func(i int64) Record {
			return Data(i, 0, float64(i))
		}}
	}
	src := mk()
	if r, ok := src.Next(); !ok || r.Kind != KindData {
		t.Fatalf("first Next = %+v, want data", r)
	}
	// A watermark is now pending. Snapshot and restore into a fresh source.
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := mk()
	if err := resumed.Restore(blob); err != nil {
		t.Fatal(err)
	}
	r, ok := resumed.Next()
	if !ok || r.Kind != KindData || r.Ts != 1 {
		t.Fatalf("post-restore Next = %+v ok=%v, want data record 1 (pending watermark must be dropped)", r, ok)
	}
}

// PacedSource restore must re-anchor the pacing schedule: after recovery
// the source emits at PerSec from the resume point instead of sleeping (or
// bursting) to catch up with the pre-crash schedule.
func TestPacedSourceRestoreResetsPacing(t *testing.T) {
	inner := &GenSource{N: 1000, Gen: func(i int64) Record { return Data(i, 0, float64(i)) }}
	src := &PacedSource{Inner: inner, PerSec: 1_000_000}
	for i := 0; i < 100; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("source ended early")
		}
	}
	if !src.pacer.Started() {
		t.Fatalf("pacer did not start its schedule")
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if src.pacer.Started() || src.pacer.count != 0 {
		t.Fatalf("restore did not reset pacing: started=%v count=%d", src.pacer.Started(), src.pacer.count)
	}
	// And the restored schedule must not make the next record wait for the
	// 100 pre-restore slots: at 10 rec/s that would be 10s; fresh pacing
	// emits the first record immediately.
	src.PerSec = 10
	start := time.Now()
	if _, ok := src.Next(); !ok {
		t.Fatalf("source ended early after restore")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("first post-restore record took %v; pacing replayed the old schedule", el)
	}
}

func TestChannelSourceEmitsDataAndIdleWatermarks(t *testing.T) {
	ch := make(chan Record, 8)
	src := &ChannelSource{C: ch, Poll: 5 * time.Millisecond, WatermarkEvery: 2}
	ch <- Data(100, 1, 1.0)
	ch <- Data(200, 2, 2.0)

	r, ok := src.Next()
	if !ok || r.Kind != KindData || r.Ts != 100 {
		t.Fatalf("first = %+v, want data ts=100", r)
	}
	r, ok = src.Next()
	if !ok || r.Kind != KindData || r.Ts != 200 {
		t.Fatalf("second = %+v, want data ts=200", r)
	}
	// Cadence watermark after WatermarkEvery=2 records.
	r, ok = src.Next()
	if !ok || r.Kind != KindWatermark || r.Ts != 200 {
		t.Fatalf("third = %+v, want watermark 200", r)
	}
	// Idle: the channel is empty, so the poll times out with a watermark.
	r, ok = src.Next()
	if !ok || r.Kind != KindWatermark || r.Ts != 200 {
		t.Fatalf("idle = %+v, want watermark 200", r)
	}
	// Closing the channel ends the stream.
	close(ch)
	if _, ok := src.Next(); ok {
		t.Fatalf("closed channel must end the stream")
	}
}

func TestChannelSourcePassesProducerWatermarks(t *testing.T) {
	ch := make(chan Record, 2)
	src := &ChannelSource{C: ch, Poll: 5 * time.Millisecond}
	ch <- Watermark(500)
	r, ok := src.Next()
	if !ok || r.Kind != KindWatermark || r.Ts != 500 {
		t.Fatalf("got %+v, want producer watermark 500", r)
	}
	// The idle watermark must not regress behind it.
	r, ok = src.Next()
	if !ok || r.Kind != KindWatermark || r.Ts != 500 {
		t.Fatalf("idle after producer watermark = %+v, want watermark 500", r)
	}
	close(ch)
}

// The hybrid handoff: all history records, then a watermark at the
// history's max timestamp, then live records.
func TestHybridSourceHandoff(t *testing.T) {
	history := &GenSource{N: 100, WatermarkEvery: 1000, Gen: func(i int64) Record {
		return Data(i, 0, float64(i))
	}}
	live := &GenSource{N: 50, WatermarkEvery: 1000, Gen: func(i int64) Record {
		return Data(100+i, 0, float64(100+i))
	}}
	src := &HybridSource{History: history, Live: live}

	var seq []Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		seq = append(seq, r)
	}
	// Locate the handoff watermark.
	wmAt := -1
	for i, r := range seq {
		if r.Kind == KindWatermark && r.Ts == 99 {
			wmAt = i
			break
		}
	}
	if wmAt != 100 {
		t.Fatalf("handoff watermark at position %d, want 100 (after all history)", wmAt)
	}
	for i, r := range seq {
		switch {
		case i < 100:
			if r.Kind != KindData || r.Ts != int64(i) {
				t.Fatalf("position %d = %+v, want history record %d", i, r, i)
			}
		case i > 100:
			if r.Kind != KindData || r.Ts != int64(i-1) {
				t.Fatalf("position %d = %+v, want live record %d", i, r, i-1)
			}
		}
	}
	if len(seq) != 151 {
		t.Fatalf("sequence length %d, want 151 (100 history + watermark + 50 live)", len(seq))
	}
}

// mkHybrid builds a replayable hybrid (generator history and generator
// live) for snapshot/restore tests.
func mkHybrid() *HybridSource {
	return &HybridSource{
		History: &GenSource{N: 60, WatermarkEvery: 1000, Gen: func(i int64) Record {
			return Data(i, 0, float64(i))
		}},
		Live: &GenSource{N: 40, WatermarkEvery: 1000, Gen: func(i int64) Record {
			return Data(60+i, 0, float64(60+i))
		}},
	}
}

// A snapshot taken in any phase must restore to exactly-once emission of
// the remaining records, including across the handoff boundary.
func TestHybridSourceSnapshotRestoreAcrossHandoff(t *testing.T) {
	for _, consumed := range []int{10, 59, 60, 61, 80} {
		t.Run(fmt.Sprintf("after%d", consumed), func(t *testing.T) {
			src := mkHybrid()
			var first []Record
			for len(first) < consumed {
				r, ok := src.Next()
				if !ok {
					t.Fatalf("source ended after %d data records", len(first))
				}
				if r.Kind == KindData {
					first = append(first, r)
				}
			}
			blob, err := src.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed := mkHybrid()
			if err := resumed.Restore(blob); err != nil {
				t.Fatal(err)
			}
			rest, wms := drainData(t, resumed, 1000)
			seen := map[int64]int{}
			for _, r := range append(first, rest...) {
				seen[r.Ts]++
			}
			for i := int64(0); i < 100; i++ {
				if seen[i] != 1 {
					t.Fatalf("record %d emitted %d times across restore", i, seen[i])
				}
			}
			// The handoff watermark must appear exactly when the snapshot
			// precedes the phase switch (which happens on the Next call
			// after history's last record), and not again after it.
			sawHandoff := false
			for _, wm := range wms {
				if wm == 59 {
					sawHandoff = true
				}
			}
			if consumed <= 60 && !sawHandoff {
				t.Fatalf("snapshot before handoff: restored run must emit the handoff watermark")
			}
			if consumed > 60 && sawHandoff {
				t.Fatalf("snapshot after handoff: restored run must not re-emit the handoff watermark")
			}
		})
	}
}

func writeTempFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// lineDecode decodes test lines into records carrying the line's byte
// offset as timestamp and its text as value.
func lineDecode(line []byte, off int64) (Record, bool, error) {
	return Data(off, 0, string(line)), true, nil
}

// mkLinePlan writes n "v<i>" lines and returns the file path and a fresh
// split plan over it at the given split size.
func mkLinePlan(t *testing.T, n int, splitSize int64) (string, func() *ScanPlan) {
	t.Helper()
	var lines []string
	for i := 0; i < n; i++ {
		lines = append(lines, fmt.Sprintf("v%d", i))
	}
	path := writeTempFile(t, "data.txt", strings.Join(lines, "\n")+"\n")
	return path, func() *ScanPlan {
		return &ScanPlan{Inputs: []string{path}, SplitSize: splitSize}
	}
}

// Two subtasks pulling from the shared split queue must partition the lines
// exactly: every line emitted once, and with splits small enough, both
// subtasks get work.
func TestFileScanSourcePartitionsLinesAcrossSubtasks(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 40, 32)
	plan := mkPlan()
	if splits, err := plan.Splits(); err != nil || len(splits) < 3 {
		t.Fatalf("splits = %v (err %v), want several small splits", splits, err)
	}
	readers := []*FileScanSource{
		{Plan: plan, Subtask: 0, Parallelism: 2, DecodeLine: lineDecode},
		{Plan: plan, Subtask: 1, Parallelism: 2, DecodeLine: lineDecode},
	}
	seen := map[string]int{}
	perSub := make([]int, 2)
	open := 2
	for open > 0 {
		open = 0
		for i, r := range readers {
			rec, ok := r.Next()
			if !ok {
				continue
			}
			open++
			if rec.Kind == KindData {
				seen[rec.Value.(string)]++
				perSub[i]++
			}
		}
	}
	for i := range readers {
		if err := readers[i].Err(); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 40 {
		t.Fatalf("union covers %d lines, want 40", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("line %q emitted %d times", v, n)
		}
	}
	if perSub[0] == 0 || perSub[1] == 0 {
		t.Fatalf("dynamic assignment starved a subtask: %v", perSub)
	}
}

// Snapshot mid-read, restore into a fresh reader over a fresh plan:
// exactly-once union, and timestamps carry the line byte offsets.
func TestFileScanSourceSnapshotRestoreResumes(t *testing.T) {
	_, mkPlan := mkLinePlan(t, 20, 32)
	src := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	var first []Record
	for i := 0; i < 7; i++ {
		r, ok := src.Next()
		if !ok {
			t.Fatalf("ended early")
		}
		first = append(first, r)
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := &FileScanSource{Plan: mkPlan(), Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
	if err := resumed.Restore(blob); err != nil {
		t.Fatal(err)
	}
	rest, _ := drainData(t, resumed, 100)
	union := map[string]int{}
	for _, r := range append(first, rest...) {
		union[r.Value.(string)]++
	}
	if len(union) != 20 {
		t.Fatalf("restore run union = %d lines, want 20", len(union))
	}
	for v, n := range union {
		if n != 1 {
			t.Fatalf("line %q emitted %d times across restore", v, n)
		}
	}
}

// A reader's split must own exactly the lines *starting* inside its byte
// range: a line straddling the boundary is consumed entirely by the split it
// starts in, never by both.
func TestFileScanSourceSplitAlignment(t *testing.T) {
	// Lines of varied width so the split boundary falls mid-line.
	var b strings.Builder
	var want []string
	for i := 0; i < 30; i++ {
		l := fmt.Sprintf("line-%02d-%s", i, strings.Repeat("x", i%7))
		want = append(want, l)
		b.WriteString(l + "\n")
	}
	path := writeTempFile(t, "ragged.txt", b.String())
	for _, splitSize := range []int64{1, 7, 16, 33, 1 << 20} {
		plan := &ScanPlan{Inputs: []string{path}, SplitSize: splitSize}
		src := &FileScanSource{Plan: plan, Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
		data, _ := drainData(t, src, 1000)
		if err := src.Err(); err != nil {
			t.Fatal(err)
		}
		if len(data) != len(want) {
			t.Fatalf("splitSize %d: %d lines, want %d", splitSize, len(data), len(want))
		}
		got := map[string]bool{}
		for _, r := range data {
			got[r.Value.(string)] = true
		}
		for _, w := range want {
			if !got[w] {
				t.Fatalf("splitSize %d: missing line %q", splitSize, w)
			}
		}
	}
}

func TestLineFileSourceDecodeErrorFailsJob(t *testing.T) {
	path := writeTempFile(t, "bad.txt", "ok\nBOOM\nok\n")
	g := NewGraph("files")
	src := g.AddSource("lines", 1, LineSourceFactory(ScanConfig{Input: path},
		func(line []byte, off int64) (Record, bool, error) {
			if string(line) == "BOOM" {
				return Record{}, false, fmt.Errorf("corrupt line")
			}
			return Data(off, 0, string(line)), true, nil
		}))
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: src, Part: Rebalance})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := NewJob(g).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "corrupt line") {
		t.Fatalf("job error = %v, want the decode error surfaced", err)
	}
}

func TestCSVFileSourceReadsAndRestores(t *testing.T) {
	content := "ts,name,value\n" +
		"10,a,1.5\n" +
		"20,\"b,with comma\",2.5\n" +
		"30,c,3.5\n" +
		"40,d,4.5\n"
	path := writeTempFile(t, "data.csv", content)
	mk := func() *FileScanSource {
		return &FileScanSource{
			Plan:    &ScanPlan{Inputs: []string{path}, CSV: true, Header: true},
			Subtask: 0, Parallelism: 1,
			DecodeRow: func(row []string, off int64) (Record, error) {
				return Data(off, 0, row[1]), nil
			}}
	}
	data, _ := drainData(t, mk(), 100)
	if len(data) != 4 {
		t.Fatalf("got %d rows, want 4 (header skipped)", len(data))
	}
	if data[1].Value.(string) != "b,with comma" {
		t.Fatalf("quoted field = %q", data[1].Value)
	}

	src := mk()
	if _, ok := src.Next(); !ok {
		t.Fatalf("ended early")
	}
	blob, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed := mk()
	if err := resumed.Restore(blob); err != nil {
		t.Fatal(err)
	}
	rest, _ := drainData(t, resumed, 100)
	if len(rest) != 3 {
		t.Fatalf("post-restore rows = %d, want 3", len(rest))
	}
	if rest[0].Value.(string) != "b,with comma" {
		t.Fatalf("restore resumed at %q, want the second row", rest[0].Value)
	}
}

// A quote-free CSV splits mid-file like a line file; a CSV with quoted
// fields falls back to one split per file (mid-file newline alignment would
// be ambiguous). Both decode identically.
func TestCSVScanQuoteAwareSplitting(t *testing.T) {
	var plain, quoted strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&plain, "%d,name%d,%d.5\n", i, i, i)
		fmt.Fprintf(&quoted, "%d,\"name%d\",%d.5\n", i, i, i)
	}
	plainPath := writeTempFile(t, "plain.csv", plain.String())
	quotedPath := writeTempFile(t, "quoted.csv", quoted.String())

	plainPlan := &ScanPlan{Inputs: []string{plainPath}, SplitSize: 64, CSV: true}
	if splits, err := plainPlan.Splits(); err != nil || len(splits) < 3 {
		t.Fatalf("quote-free csv splits = %v (err %v), want several", splits, err)
	}
	quotedPlan := &ScanPlan{Inputs: []string{quotedPath}, SplitSize: 64, CSV: true}
	if splits, err := quotedPlan.Splits(); err != nil || len(splits) != 1 {
		t.Fatalf("quoted csv splits = %v (err %v), want exactly one (whole file)", splits, err)
	}

	for name, plan := range map[string]*ScanPlan{"plain": plainPlan, "quoted": quotedPlan} {
		src := &FileScanSource{Plan: plan, Subtask: 0, Parallelism: 1,
			DecodeRow: func(row []string, off int64) (Record, error) {
				return Data(off, 0, row[1]), nil
			}}
		data, _ := drainData(t, src, 1000)
		if err := src.Err(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) != 50 {
			t.Fatalf("%s: %d rows, want 50", name, len(data))
		}
		seen := map[string]bool{}
		for _, r := range data {
			seen[r.Value.(string)] = true
		}
		for i := 0; i < 50; i++ {
			if !seen[fmt.Sprintf("name%d", i)] {
				t.Fatalf("%s: missing row %d", name, i)
			}
		}
	}
}

// Directory and glob inputs expand to every matching file, in sorted order,
// and the scan covers all of them.
func TestScanPlanDirectoryAndGlobInputs(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("part-%d.txt", i)),
			[]byte(fmt.Sprintf("a%d\nb%d\n", i, i)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for name, input := range map[string]string{
		"dir":  dir,
		"glob": filepath.Join(dir, "part-*.txt"),
	} {
		t.Run(name, func(t *testing.T) {
			plan := &ScanPlan{Inputs: []string{input}}
			src := &FileScanSource{Plan: plan, Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
			data, _ := drainData(t, src, 100)
			if err := src.Err(); err != nil {
				t.Fatal(err)
			}
			if len(data) != 6 {
				t.Fatalf("scanned %d lines across the files, want 6", len(data))
			}
		})
	}
}

func TestCSVFileSourceMissingFileFailsJob(t *testing.T) {
	g := NewGraph("missing")
	src := g.AddSource("csv", 1, CSVSourceFactory(
		ScanConfig{Input: filepath.Join(t.TempDir(), "nope.csv")},
		func(row []string, off int64) (Record, error) { return Data(off, 0, row), nil }))
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: src, Part: Rebalance})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := NewJob(g).Run(ctx); err == nil {
		t.Fatalf("missing file must fail the job")
	}
}

// The hybrid source through the engine with checkpointing: kill during the
// history replay, recover, and the deduplicated results must equal a
// failure-free run — exactly-once across the handoff boundary.
func TestHybridSourceCheckpointRecoveryThroughEngine(t *testing.T) {
	const histN, liveN = 3000, 1000
	build := func(paced bool, sink *CollectSink) *Graph {
		g := NewGraph("hybrid-recovery")
		src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
			var history SourceFunc = &GenSource{N: histN, WatermarkEvery: 16, Gen: func(i int64) Record {
				return Data(i, uint64(i%4), 1.0)
			}}
			if paced {
				history = &PacedSource{PerSec: 15000, Inner: history}
			}
			return &HybridSource{
				History: history,
				Live: &GenSource{N: liveN, WatermarkEvery: 16, Gen: func(i int64) Record {
					return Data(histN+i, uint64(i%4), 1.0)
				}},
			}
		})
		red := g.AddOperator("sum", 2, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: src, Part: HashPartition})
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		return g
	}
	sums := func(s *CollectSink) map[uint64]float64 {
		out := map[uint64]float64{}
		for _, r := range s.Records() {
			out[r.Key] = r.Value.(float64) // final emission per key wins
		}
		return out
	}

	refSink := &CollectSink{}
	run(t, build(false, refSink))
	want := sums(refSink)

	backend := state.NewMemoryBackend(0)
	crashSink := &CollectSink{}
	job := NewJob(build(true, crashSink), WithCheckpointing(backend, 20*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	err := job.Run(ctx)
	cancel()
	if err == nil {
		t.Skip("job finished before kill on this machine")
	}
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint before kill")
	}
	recSink := &CollectSink{}
	job2 := NewJob(build(false, recSink), WithRestore(snap))
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := job2.Run(ctx2); err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	got := sums(recSink)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d = %v, want %v (exactly-once across the handoff)", k, got[k], v)
		}
	}
}

// A producer watermark inside (maxTs-Lag, maxTs] must fold into the
// source's clock: the fold used to compare r.Ts against maxTs but assign
// r.Ts+Lag, so such a promise was forwarded downstream and then regressed
// by the next idle/cadence watermark — which can re-open already-fired
// windows in downstream operators.
func TestChannelSourceProducerWatermarkFoldsIntoClock(t *testing.T) {
	ch := make(chan Record, 4)
	src := &ChannelSource{C: ch, Poll: time.Millisecond, Lag: 10}
	ch <- Data(100, 1, 1.0)
	if r, ok := src.Next(); !ok || r.Kind != KindData {
		t.Fatalf("first = %+v ok=%v, want data", r, ok)
	}
	// Clock: maxTs=100, watermark 90. The producer promises 95.
	ch <- Watermark(95)
	if r, ok := src.Next(); !ok || r.Kind != KindWatermark || r.Ts != 95 {
		t.Fatalf("producer watermark = %+v ok=%v, want watermark 95", r, ok)
	}
	// Idle watermarks must not regress behind the forwarded promise.
	if r, ok := src.Next(); !ok || r.Kind != KindWatermark || r.Ts != 95 {
		t.Fatalf("idle after fold = %+v ok=%v, want watermark 95", r, ok)
	}
	// A stale promise below the current watermark must not regress it.
	ch <- Watermark(50)
	if r, ok := src.Next(); !ok || r.Kind != KindWatermark || r.Ts != 95 {
		t.Fatalf("stale producer watermark = %+v ok=%v, want clamped to 95", r, ok)
	}
	// A +inf close-out promise must pass through intact — Lag-adjusted
	// arithmetic would overflow and swallow it.
	ch <- Watermark(math.MaxInt64)
	if r, ok := src.Next(); !ok || r.Kind != KindWatermark || r.Ts != math.MaxInt64 {
		t.Fatalf("close-out promise = %+v ok=%v, want +inf watermark", r, ok)
	}
	close(ch)
}

// A history that fails mid-replay must end the hybrid stream so the runtime
// surfaces Err at end of stream — not hand off to an unbounded live phase
// that would run forever over a silently truncated history.
func TestHybridSourceHistoryErrorEndsStream(t *testing.T) {
	path := writeTempFile(t, "hist.txt", "ok\nBOOM\nok\n")
	live := make(chan Record) // never fed, never closed: an unbounded live phase
	src := &HybridSource{
		History: &FileScanSource{
			Plan: &ScanPlan{Inputs: []string{path}}, Subtask: 0, Parallelism: 1,
			DecodeLine: func(line []byte, off int64) (Record, bool, error) {
				if string(line) == "BOOM" {
					return Record{}, false, fmt.Errorf("corrupt history")
				}
				return Data(off, 0, string(line)), true, nil
			}},
		Live: &ChannelSource{C: live, Poll: time.Millisecond},
	}
	if r, ok := src.Next(); !ok || r.Kind != KindData {
		t.Fatalf("first = %+v ok=%v, want the healthy history record", r, ok)
	}
	if r, ok := src.Next(); ok {
		t.Fatalf("after the history error got %+v, want end of stream (no handoff)", r)
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "corrupt history") {
		t.Fatalf("Err() = %v, want the history error", err)
	}
}

// Snapshot of an exhausted file reader must record the end position: a
// composite connector snapshotting a finished inner reader would otherwise
// restore to the beginning and replay the whole file.
func TestFileSourceSnapshotAfterEndRecordsEndPosition(t *testing.T) {
	linePath := writeTempFile(t, "done.txt", "a\nb\nc\n")
	csvPath := writeTempFile(t, "done.csv", "1,a\n2,b\n")
	sources := map[string]func() SourceFunc{
		"line": func() SourceFunc {
			return &FileScanSource{Plan: &ScanPlan{Inputs: []string{linePath}},
				Subtask: 0, Parallelism: 1, DecodeLine: lineDecode}
		},
		"csv": func() SourceFunc {
			return &FileScanSource{Plan: &ScanPlan{Inputs: []string{csvPath}, CSV: true},
				Subtask: 0, Parallelism: 1,
				DecodeRow: func(row []string, off int64) (Record, error) {
					return Data(off, 0, row[1]), nil
				}}
		},
	}
	for name, mk := range sources {
		t.Run(name, func(t *testing.T) {
			src := mk()
			if data, _ := drainData(t, src, 100); len(data) == 0 {
				t.Fatalf("source emitted nothing")
			}
			blob, err := src.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed := mk()
			if err := resumed.Restore(blob); err != nil {
				t.Fatal(err)
			}
			if rest, _ := drainData(t, resumed, 100); len(rest) != 0 {
				t.Fatalf("restored exhausted reader replayed %d records", len(rest))
			}
		})
	}
}
