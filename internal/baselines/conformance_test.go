package baselines_test

// Cross-engine conformance: every window aggregation engine — Cutty and all
// baselines — must produce exactly the windows that the window-package
// oracle derives, with values equal to folding each window's elements.
// This is the load-bearing correctness test of the whole sharing layer: the
// E1–E5 experiments are only meaningful because all strategies pass it.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/agg"
	"repro/internal/baselines"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/window"
)

type mkEngine struct {
	name     string
	make     func(engine.Emit) engine.Engine
	periodic bool // true if the engine only accepts periodic windows
}

func allEngines() []mkEngine {
	return []mkEngine{
		{"cutty", func(e engine.Emit) engine.Engine { return cutty.New(e) }, false},
		{"cutty-linear", func(e engine.Emit) engine.Engine { return cutty.New(e, cutty.WithLinearEval()) }, false},
		{"buckets", func(e engine.Emit) engine.Engine { return baselines.NewBuckets(e) }, false},
		{"eager", func(e engine.Emit) engine.Engine { return baselines.NewEager(e) }, false},
		{"b-int", func(e engine.Emit) engine.Engine { return baselines.NewBInt(e) }, false},
		{"pairs", baselines.NewPairs, true},
		{"panes", baselines.NewPanes, true},
	}
}

// drive feeds elements with the canonical watermark-before-element protocol
// and a final flush watermark.
func drive(e engine.Engine, elems []window.Element) {
	for _, el := range elems {
		e.OnWatermark(el.Ts)
		e.OnElement(el.Ts, el.V)
	}
	e.OnWatermark(math.MaxInt64)
}

// expected computes the oracle result set for the given queries.
func expected(queries []engine.Query, elems []window.Element) []engine.Result {
	var out []engine.Result
	events := window.Interleave(elems, math.MaxInt64)
	for qid, q := range queries {
		for _, ext := range window.Drive(q.Window, events) {
			acc := q.Fn.Identity
			for p := ext.FromPos; p < ext.ToPos; p++ {
				if p == ext.FromPos {
					acc = q.Fn.Lift(elems[p].V)
				} else {
					acc = q.Fn.Combine(acc, q.Fn.Lift(elems[p].V))
				}
			}
			out = append(out, engine.Result{
				QueryID: qid,
				Start:   ext.Start,
				End:     ext.End,
				Value:   q.Fn.Lower(acc),
				Count:   acc.N,
			})
		}
	}
	return out
}

func sortResults(rs []engine.Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.QueryID != b.QueryID {
			return a.QueryID < b.QueryID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		// Distinct windows may share (query, start, end) — e.g. consecutive
		// delta windows between equal timestamps — so break ties on content.
		if a.Count != b.Count {
			return a.Count < b.Count
		}
		return a.Value < b.Value
	})
}

func assertConform(t *testing.T, name string, got, want []engine.Result) {
	t.Helper()
	sortResults(got)
	sortResults(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d\n got: %+v\nwant: %+v", name, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.QueryID != w.QueryID || g.Start != w.Start || g.End != w.End || g.Count != w.Count {
			t.Fatalf("%s: result %d = %+v, want %+v", name, i, g, w)
		}
		if math.Abs(g.Value-w.Value) > 1e-6*(1+math.Abs(w.Value)) {
			t.Fatalf("%s: result %d value = %v, want %v (window %d..%d)", name, i, g.Value, w.Value, g.Start, g.End)
		}
	}
}

func runConformance(t *testing.T, queries []engine.Query, elems []window.Element, periodicOnly bool) {
	t.Helper()
	want := expected(queries, elems)
	for _, mk := range allEngines() {
		if mk.periodic && !periodicOnly {
			continue
		}
		var got []engine.Result
		e := mk.make(func(r engine.Result) { got = append(got, r) })
		for _, q := range queries {
			if _, err := e.AddQuery(q); err != nil {
				t.Fatalf("%s: AddQuery: %v", mk.name, err)
			}
		}
		drive(e, elems)
		assertConform(t, mk.name, got, want)
	}
}

func genStream(rng *rand.Rand, n int, maxGap int64) []window.Element {
	elems := make([]window.Element, n)
	var ts int64
	for i := range elems {
		ts += rng.Int63n(maxGap + 1)
		elems[i] = window.Element{Ts: ts, V: float64(rng.Intn(20)) - 5}
	}
	return elems
}

func TestConformTumblingSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	queries := []engine.Query{{Window: window.Tumbling(10), Fn: agg.SumF64()}}
	runConformance(t, queries, genStream(rng, 300, 4), true)
}

func TestConformSlidingAllFns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fname := range []string{"sum", "count", "min", "max", "avg", "var"} {
		queries := []engine.Query{{Window: window.Sliding(20, 5), Fn: agg.StdFnF64(fname)}}
		runConformance(t, queries, genStream(rng, 200, 3), true)
	}
}

func TestConformSlidingNonDividing(t *testing.T) {
	// size not a multiple of slide: exercises the pairs two-length slicing.
	rng := rand.New(rand.NewSource(3))
	queries := []engine.Query{{Window: window.Sliding(7, 3), Fn: agg.SumF64()}}
	runConformance(t, queries, genStream(rng, 250, 2), true)
}

func TestConformMultiQueryPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	queries := []engine.Query{
		{Window: window.Tumbling(8), Fn: agg.SumF64()},
		{Window: window.Sliding(12, 4), Fn: agg.SumF64()},
		{Window: window.Sliding(10, 5), Fn: agg.MaxF64()},
		{Window: window.Sliding(9, 3), Fn: agg.AvgF64()},
	}
	runConformance(t, queries, genStream(rng, 400, 3), true)
}

func TestConformSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	queries := []engine.Query{
		{Window: window.Session(6), Fn: agg.SumF64()},
		{Window: window.Session(9), Fn: agg.CountF64()},
	}
	// maxGap larger than session gaps so sessions actually split.
	runConformance(t, queries, genStream(rng, 300, 12), false)
}

func TestConformCountWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	queries := []engine.Query{
		{Window: window.CountTumbling(7), Fn: agg.SumF64()},
		{Window: window.CountSliding(10, 4), Fn: agg.MinF64()},
	}
	runConformance(t, queries, genStream(rng, 200, 3), false)
}

func TestConformPunctuationAndDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	elems := genStream(rng, 300, 3)
	queries := []engine.Query{
		{Window: window.Punctuation(func(v float64) bool { return v < -3 }), Fn: agg.SumF64()},
		{Window: window.Delta(8), Fn: agg.VarF64()},
	}
	runConformance(t, queries, elems, false)
}

func TestConformMixedPeriodicAndSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	queries := []engine.Query{
		{Window: window.Sliding(15, 5), Fn: agg.SumF64()},
		{Window: window.Session(7), Fn: agg.SumF64()},
		{Window: window.Tumbling(11), Fn: agg.MaxF64()},
		{Window: window.SessionWithMaxDuration(6, 20), Fn: agg.CountF64()},
	}
	runConformance(t, queries, genStream(rng, 350, 9), false)
}

// Randomized conformance sweep: random query sets over random streams.
func TestConformRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 25; iter++ {
		nq := rng.Intn(4) + 1
		queries := make([]engine.Query, 0, nq)
		periodicOnly := true
		for i := 0; i < nq; i++ {
			var spec window.Spec
			switch rng.Intn(6) {
			case 0:
				spec = window.Tumbling(int64(rng.Intn(20) + 1))
			case 1:
				slide := int64(rng.Intn(8) + 1)
				spec = window.Sliding(slide*int64(rng.Intn(4)+1)+int64(rng.Intn(int(slide))), slide)
				if spec.Size < spec.Slide {
					spec = window.Sliding(spec.Slide, spec.Slide)
				}
			case 2:
				spec = window.Session(int64(rng.Intn(10) + 1))
				periodicOnly = false
			case 3:
				spec = window.CountTumbling(int64(rng.Intn(9) + 1))
				periodicOnly = false
			case 4:
				spec = window.Delta(float64(rng.Intn(10) + 1))
				periodicOnly = false
			case 5:
				spec = window.TimeOrCount(int64(rng.Intn(20)+5), int64(rng.Intn(8)+2))
				periodicOnly = false
			}
			fn := agg.StdFnF64([]string{"sum", "count", "min", "max", "avg", "var"}[rng.Intn(6)])
			queries = append(queries, engine.Query{Window: spec, Fn: fn})
		}
		elems := genStream(rng, rng.Intn(300)+50, int64(rng.Intn(6)+1))
		runConformance(t, queries, elems, periodicOnly)
	}
}

func TestPairsRejectsNonPeriodic(t *testing.T) {
	for _, mk := range []func(engine.Emit) engine.Engine{baselines.NewPairs, baselines.NewPanes} {
		e := mk(func(engine.Result) {})
		if _, err := e.AddQuery(engine.Query{Window: window.Session(5), Fn: agg.SumF64()}); err == nil {
			t.Fatalf("%s accepted a session window", e.Name())
		}
		if _, err := e.AddQuery(engine.Query{Window: window.Tumbling(5), Fn: agg.SumF64()}); err != nil {
			t.Fatalf("%s rejected a tumbling window: %v", e.Name(), err)
		}
	}
}

func TestEnginesRejectIncompleteQuery(t *testing.T) {
	for _, mk := range allEngines() {
		e := mk.make(func(engine.Result) {})
		if _, err := e.AddQuery(engine.Query{}); err == nil {
			t.Errorf("%s accepted an empty query", mk.name)
		}
	}
}

func TestRemoveQueryStopsResults(t *testing.T) {
	for _, mk := range allEngines() {
		var got []engine.Result
		e := mk.make(func(r engine.Result) { got = append(got, r) })
		spec := window.Tumbling(10)
		id1, _ := e.AddQuery(engine.Query{Window: spec, Fn: agg.SumF64()})
		id2, _ := e.AddQuery(engine.Query{Window: spec, Fn: agg.SumF64()})
		for ts := int64(0); ts < 50; ts++ {
			e.OnWatermark(ts)
			e.OnElement(ts, 1)
		}
		e.RemoveQuery(id1)
		before := len(got)
		for ts := int64(50); ts < 100; ts++ {
			e.OnWatermark(ts)
			e.OnElement(ts, 1)
		}
		e.OnWatermark(math.MaxInt64)
		for _, r := range got[before:] {
			if r.QueryID == id1 {
				t.Errorf("%s: removed query %d still produced results", mk.name, id1)
			}
		}
		var saw2 bool
		for _, r := range got[before:] {
			if r.QueryID == id2 {
				saw2 = true
			}
		}
		if !saw2 {
			t.Errorf("%s: surviving query %d produced no results after removal of %d", mk.name, id2, id1)
		}
	}
}

// Cutty must store partials at slice granularity, B-Int at element
// granularity: with elements arriving every tick and slide 5, Cutty holds an
// order of magnitude fewer partials.
func TestCuttyStoresFewerPartialsThanBInt(t *testing.T) {
	specs := []engine.Query{{Window: window.Sliding(100, 5), Fn: agg.SumF64()}}
	var c, b engine.Engine = cutty.New(func(engine.Result) {}), baselines.NewBInt(func(engine.Result) {})
	for _, e := range []engine.Engine{c, b} {
		for _, q := range specs {
			if _, err := e.AddQuery(q); err != nil {
				t.Fatal(err)
			}
		}
		for ts := int64(0); ts < 1000; ts++ {
			e.OnWatermark(ts)
			e.OnElement(ts, 1)
		}
	}
	cp, bp := c.StoredPartials(), b.StoredPartials()
	if cp*4 > bp {
		t.Fatalf("cutty stored %d partials, b-int %d; expected cutty << b-int", cp, bp)
	}
}

// Sharing: with N identical queries, Cutty's stored partials must not grow
// with N (one shared slice store), while Buckets' open-window state does.
func TestCuttySharingAcrossQueries(t *testing.T) {
	run := func(e engine.Engine, n int) int {
		for i := 0; i < n; i++ {
			if _, err := e.AddQuery(engine.Query{Window: window.Sliding(50, 10), Fn: agg.SumF64()}); err != nil {
				t.Fatal(err)
			}
		}
		for ts := int64(0); ts < 500; ts++ {
			e.OnWatermark(ts)
			e.OnElement(ts, 1)
		}
		return e.StoredPartials()
	}
	c1 := run(cutty.New(func(engine.Result) {}), 1)
	c8 := run(cutty.New(func(engine.Result) {}), 8)
	if c8 != c1 {
		t.Fatalf("cutty partials grew with identical queries: 1q=%d 8q=%d", c1, c8)
	}
	b1 := run(baselines.NewBuckets(func(engine.Result) {}), 1)
	b8 := run(baselines.NewBuckets(func(engine.Result) {}), 8)
	if b8 < 8*b1 {
		t.Fatalf("buckets should grow linearly: 1q=%d 8q=%d", b1, b8)
	}
}

// Slices are cut only at window begins: sliding(100, 5) over 1000 ticks must
// keep roughly range/slide slices alive, not one per element.
func TestCuttySliceCount(t *testing.T) {
	c := cutty.New(func(engine.Result) {})
	if _, err := c.AddQuery(engine.Query{Window: window.Sliding(100, 5), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 1000; ts++ {
		c.OnWatermark(ts)
		c.OnElement(ts, 1)
	}
	slices := c.Slices()
	if slices < 15 || slices > 30 { // ~100/5 = 20 live slices
		t.Fatalf("live slices = %d, want ≈20", slices)
	}
}

// Dynamic registration: adding a query mid-stream must produce correct
// results for windows that start after registration.
func TestCuttyDynamicAddQuery(t *testing.T) {
	var got []engine.Result
	c := cutty.New(func(r engine.Result) { got = append(got, r) })
	if _, err := c.AddQuery(engine.Query{Window: window.Tumbling(10), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 50; ts++ {
		c.OnWatermark(ts)
		c.OnElement(ts, 1)
	}
	id2, err := c.AddQuery(engine.Query{Window: window.Tumbling(10), Fn: agg.MaxF64()})
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(50); ts < 100; ts++ {
		c.OnWatermark(ts)
		c.OnElement(ts, float64(ts))
	}
	c.OnWatermark(math.MaxInt64)
	var maxResults []engine.Result
	for _, r := range got {
		if r.QueryID == id2 {
			maxResults = append(maxResults, r)
		}
	}
	if len(maxResults) != 5 { // windows [50,60) .. [90,100)
		t.Fatalf("late query produced %d windows: %+v", len(maxResults), maxResults)
	}
	for i, r := range maxResults {
		wantStart := int64(50 + 10*i)
		if r.Start != wantStart || r.Value != float64(wantStart+9) {
			t.Fatalf("late query window %d = %+v, want start %d max %d", i, r, wantStart, wantStart+9)
		}
	}
}
