package transport

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// SupervisionPolicy bounds and paces a Supervisor's restarts.
type SupervisionPolicy struct {
	// MaxRestarts is the restart budget: how many failed epochs may be
	// retried before the last error surfaces (default 5; negative: none).
	MaxRestarts int
	// BaseBackoff is the delay before the first restart, doubling per
	// consecutive restart up to MaxBackoff, with equal jitter (defaults
	// 100ms / 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RejoinWindow is how long a recovering epoch waits for the full
	// worker complement before degrading to whoever has rejoined
	// (default 3s). Only external workers degrade; self-spawn mode
	// respawns the full complement instead.
	RejoinWindow time.Duration
	// MinWorkers is the floor below which a degraded epoch will not start
	// (default 1): the rejoin window keeps waiting until at least this
	// many workers are connected.
	MinWorkers int
}

func (p SupervisionPolicy) withDefaults() SupervisionPolicy {
	if p.MaxRestarts == 0 {
		p.MaxRestarts = 5
	}
	if p.MaxRestarts < 0 {
		p.MaxRestarts = 0
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.RejoinWindow <= 0 {
		p.RejoinWindow = 3 * time.Second
	}
	if p.MinWorkers <= 0 {
		p.MinWorkers = 1
	}
	return p
}

// RestartStat records one completed recovery: from the instant the
// coordinator detected the failure to the instant the recovered epoch's
// producers were unleashed. Downtime is the detect→restored MTTR term.
type RestartStat struct {
	// Attempt is the 1-based restart number.
	Attempt int
	// Cause is the failure that ended the previous epoch.
	Cause string
	// FailedAt is when the coordinator first observed the failure;
	// RestoredAt is when the recovered epoch passed its readiness barrier.
	FailedAt   time.Time
	RestoredAt time.Time
	Downtime   time.Duration
	// Workers is the recovered epoch's worker count — smaller than the
	// original complement when the epoch degraded onto survivors.
	Workers int
	// Checkpoint is the snapshot id the epoch restored from (0: restarted
	// from scratch, no checkpoint had completed yet).
	Checkpoint int64
}

// Supervisor closes the detect→recover loop around the coordinator: it owns
// a persistent control listener that outlives epochs, runs the job as a
// sequence of epochs, and on failure reloads the last completed checkpoint
// from the backend and relaunches — respawning its workers (self-spawn
// mode, Spawn set) or re-placing the dead worker's subtasks onto whoever
// redials within the rejoin window (graceful degradation; restore works at
// any worker count). Restarts are spaced by capped exponential backoff with
// jitter and bounded by the policy's restart budget.
type Supervisor struct {
	cfg Config
	pol SupervisionPolicy
	ln  net.Listener

	// Spawn, when set, (re)launches the full worker complement dialing
	// addr — the self-spawn hook. It is invoked before every epoch's
	// gather; Reap, when set, first waits out the previous epoch's
	// processes so respawn never doubles the complement.
	Spawn func(ctx context.Context, addr string, n int) error
	Reap  func()

	completed atomic.Int64
	mu        sync.Mutex
	stats     []RestartStat
	failedAt  time.Time
}

// NewSupervisor binds the control listener (or adopts cfg.Listener) so
// workers can dial before Run is entered.
func NewSupervisor(cfg Config, pol SupervisionPolicy) (*Supervisor, error) {
	ln, err := cfg.listen()
	if err != nil {
		return nil, err
	}
	return &Supervisor{cfg: cfg, pol: pol.withDefaults(), ln: ln}, nil
}

// Addr returns the control-plane address workers dial (and redial).
func (s *Supervisor) Addr() string { return s.ln.Addr().String() }

// CompletedCheckpoints reports how many snapshots all epochs persisted.
func (s *Supervisor) CompletedCheckpoints() int64 { return s.completed.Load() }

// Stats returns one entry per completed recovery, in order.
func (s *Supervisor) Stats() []RestartStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RestartStat, len(s.stats))
	copy(out, s.stats)
	return out
}

// Run executes the supervised job until global success (nil), a cancelled
// context, or an exhausted restart budget (the last epoch's error, wrapped).
func (s *Supervisor) Run(ctx context.Context) error {
	RegisterTypes()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The accept pump outlives epochs: survivors and respawned workers
	// redial the same address while the failed epoch is still unwinding.
	conns := make(chan net.Conn)
	go func() { <-ctx.Done(); s.ln.Close() }()
	defer s.ln.Close()
	go func() {
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				return
			}
			select {
			case conns <- conn:
			case <-ctx.Done():
				conn.Close()
				return
			}
		}
	}()

	restore := s.cfg.Restore
	var lastErr error
	for attempt := 0; ; attempt++ {
		// Each recovery resumes from the newest completed checkpoint —
		// possibly one persisted by the epoch that just failed.
		if attempt > 0 && s.cfg.Backend != nil {
			if snap, ok, err := s.cfg.Backend.Latest(); err == nil && ok {
				restore = snap
			}
		}
		if s.Spawn != nil {
			if s.Reap != nil && attempt > 0 {
				s.Reap()
			}
			if err := s.Spawn(ctx, s.Addr(), s.cfg.Workers); err != nil {
				return fmt.Errorf("supervision: respawn workers: %w", err)
			}
		}
		// Degradation applies only to recovering epochs with external
		// workers: attempt 0 and self-spawn mode wait for full strength.
		degrade := attempt > 0 && s.Spawn == nil
		workers, err := s.gather(ctx, conns, degrade)
		if err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		ep := &epoch{
			cfg:           s.cfg,
			workers:       workers,
			restore:       restore,
			completed:     &s.completed,
			supervised:    true,
			rejoinOnAbort: attempt < s.pol.MaxRestarts,
		}
		if attempt > 0 {
			// The recovery is complete the instant the new epoch's
			// producers are unleashed; record the trajectory then.
			stat := RestartStat{
				Attempt:  attempt,
				Cause:    lastErr.Error(),
				FailedAt: s.lastFailedAt(),
				Workers:  len(workers),
			}
			if restore != nil {
				stat.Checkpoint = restore.CheckpointID
			}
			ep.onStarted = func(t time.Time) {
				stat.RestoredAt = t
				stat.Downtime = t.Sub(stat.FailedAt)
				s.mu.Lock()
				s.stats = append(s.stats, stat)
				s.mu.Unlock()
			}
		}
		err = ep.run(ctx)
		s.setLastFailedAt(ep.failedAt)
		closeWorkers(workers)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return err
		}
		if attempt >= s.pol.MaxRestarts {
			return fmt.Errorf("supervision: restart budget (%d) exhausted: %w", s.pol.MaxRestarts, err)
		}
		select {
		case <-time.After(backoffDelay(s.pol, attempt)):
		case <-ctx.Done():
			return err
		}
	}
}

// lastFailedAt/setLastFailedAt hand the failed epoch's detection instant to
// the next attempt's RestartStat under the stats lock (the onStarted
// callback runs on the epoch goroutine).
func (s *Supervisor) lastFailedAt() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failedAt
}

func (s *Supervisor) setLastFailedAt(t time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failedAt = t
}

// gather collects the epoch's worker connections from the accept pump. At
// full strength it waits for cfg.Workers hellos; a degraded gather returns
// whoever rejoined once the rejoin window expires, as long as the policy's
// MinWorkers floor is met. Connections whose hello never arrives or is
// malformed are dropped, not fatal — a half-dead worker must not kill the
// job its replacement is joining.
func (s *Supervisor) gather(ctx context.Context, conns chan net.Conn, degrade bool) ([]*wconn, error) {
	_, hbTimeout := s.cfg.heartbeat()
	var window <-chan time.Time
	if degrade {
		window = time.After(s.pol.RejoinWindow)
	}
	var ws []*wconn
	for len(ws) < s.cfg.Workers {
		var expired <-chan time.Time
		if degrade && len(ws) >= s.pol.MinWorkers {
			expired = window
		}
		select {
		case conn := <-conns:
			w, err := newWorkerConn(len(ws)+1, conn, hbTimeout)
			if err != nil {
				conn.Close()
				continue
			}
			ws = append(ws, w)
		case <-expired:
			return ws, nil
		case <-ctx.Done():
			closeWorkers(ws)
			return nil, ctx.Err()
		}
	}
	return ws, nil
}

// backoffDelay is the pause before restart attempt+1: capped exponential
// with equal jitter.
func backoffDelay(p SupervisionPolicy, attempt int) time.Duration {
	d := p.BaseBackoff << uint(attempt)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
