package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"

	"repro/internal/agg"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/window"
)

// WindowQuery names a window aggregation declaratively so that the operator
// can be reconstructed on recovery (specs and functions live in the job
// definition; only mutable state is checkpointed).
type WindowQuery struct {
	Spec window.Spec
	Fn   *agg.FnF64
}

// WindowOp is the keyed window aggregation operator. It receives keyed
// float64 records (after a hash edge), restores event-time order with a
// watermark-driven reorder buffer (merging the per-upstream in-order streams
// re-introduces disorder), and runs one Cutty engine per key. Window results
// are emitted as records whose Value is a WindowResult and whose Ts is the
// window end.
//
// The operator is checkpointable: its snapshot contains the reorder buffer
// and every per-key engine's state.
type WindowOp struct {
	Queries []WindowQuery

	out         Collector
	buf         []Record
	curWM       int64
	engines     map[uint64]*cutty.Engine
	curKey      uint64
	droppedLate int64
}

var _ Operator = (*WindowOp)(nil)

// NewWindowOp returns an operator factory running the given queries.
func NewWindowOp(queries ...WindowQuery) OperatorFactory {
	return func() Operator { return &WindowOp{Queries: queries} }
}

func (w *WindowOp) newEngine() *cutty.Engine {
	e := cutty.New(w.emitResult)
	for _, q := range w.Queries {
		if _, err := e.AddQuery(engine.Query{Window: q.Spec, Fn: q.Fn}); err != nil {
			// Queries are validated at graph build; this is unreachable in a
			// validated job.
			panic(fmt.Sprintf("dataflow: window query rejected: %v", err))
		}
	}
	return e
}

func (w *WindowOp) emitResult(r engine.Result) {
	w.out.Collect(Data(r.End, w.curKey, WindowResult{
		QueryID: r.QueryID,
		Start:   r.Start,
		End:     r.End,
		Value:   r.Value,
		Count:   r.Count,
	}))
}

type windowOpState struct {
	CurWM   int64
	BufTs   []int64
	BufKey  []uint64
	BufVal  []float64
	Keys    []uint64
	Engines [][]byte
}

// Open implements Operator.
func (w *WindowOp) Open(ctx *OpContext) error {
	w.engines = make(map[uint64]*cutty.Engine)
	w.curWM = math.MinInt64
	if ctx.Restore == nil {
		return nil
	}
	var s windowOpState
	if err := gob.NewDecoder(bytes.NewReader(ctx.Restore)).Decode(&s); err != nil {
		return fmt.Errorf("window restore: %w", err)
	}
	w.curWM = s.CurWM
	for i := range s.BufTs {
		w.buf = append(w.buf, Data(s.BufTs[i], s.BufKey[i], s.BufVal[i]))
	}
	for i, key := range s.Keys {
		e := w.newEngine()
		if err := e.Restore(gob.NewDecoder(bytes.NewReader(s.Engines[i]))); err != nil {
			return fmt.Errorf("window restore key %d: %w", key, err)
		}
		w.engines[key] = e
	}
	return nil
}

// OnRecord implements Operator: buffer until the watermark releases. Late
// elements — older than the current watermark — are dropped (allowed
// lateness zero): releasing them would feed the per-key engines
// out-of-order input. The count of dropped records is observable via
// DroppedLate.
func (w *WindowOp) OnRecord(r Record, _ Collector) {
	if _, ok := r.Value.(float64); !ok {
		return
	}
	if r.Ts <= w.curWM {
		w.droppedLate++
		return
	}
	w.buf = append(w.buf, r)
}

// DroppedLate reports how many elements arrived after the watermark had
// passed their timestamp and were therefore excluded.
func (w *WindowOp) DroppedLate() int64 { return w.droppedLate }

// OnWatermark implements Operator: release buffered records with ts <= wm in
// event-time order into the per-key engines, then advance every engine's
// watermark.
func (w *WindowOp) OnWatermark(wm int64, out Collector) {
	w.out = out
	sort.SliceStable(w.buf, func(i, j int) bool { return w.buf[i].Ts < w.buf[j].Ts })
	i := 0
	for ; i < len(w.buf) && w.buf[i].Ts <= wm; i++ {
		r := w.buf[i]
		e, ok := w.engines[r.Key]
		if !ok {
			e = w.newEngine()
			w.engines[r.Key] = e
		}
		w.curKey = r.Key
		e.OnWatermark(r.Ts)
		e.OnElement(r.Ts, r.Value.(float64))
	}
	w.buf = append(w.buf[:0], w.buf[i:]...)
	w.curWM = wm
	for key, e := range w.engines {
		w.curKey = key
		e.OnWatermark(wm)
	}
	w.out = nil
}

// Snapshot implements Operator.
func (w *WindowOp) Snapshot() ([]byte, error) {
	s := windowOpState{CurWM: w.curWM}
	for _, r := range w.buf {
		s.BufTs = append(s.BufTs, r.Ts)
		s.BufKey = append(s.BufKey, r.Key)
		s.BufVal = append(s.BufVal, r.Value.(float64))
	}
	keys := make([]uint64, 0, len(w.engines))
	for key := range w.engines {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		var buf bytes.Buffer
		if err := w.engines[key].Snapshot(gob.NewEncoder(&buf)); err != nil {
			return nil, fmt.Errorf("window snapshot key %d: %w", key, err)
		}
		s.Keys = append(s.Keys, key)
		s.Engines = append(s.Engines, buf.Bytes())
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("window snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Finish implements Operator: flush every remaining window.
func (w *WindowOp) Finish(out Collector) {
	w.OnWatermark(math.MaxInt64, out)
}
