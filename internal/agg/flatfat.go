package agg

// FlatFAT is a flat fixed-capacity aggregate tree (Tangwongsan et al.,
// "General Incremental Sliding-Window Aggregation", VLDB 2015) extended with
// ring-buffer semantics and arbitrary range queries.
//
// Leaves hold partial aggregates in FIFO order; internal nodes cache the
// combination of their children. Appending to the back and evicting from the
// front are O(log n); querying the aggregate of any contiguous logical range
// is O(log n) combines. The structure never reorders partials, so it is
// correct for non-commutative (merely associative) aggregates.
//
// Cutty uses a FlatFAT over *slices*; the B-Int baseline uses a FlatFAT over
// individual elements, which is exactly the cost model that makes B-Int an
// order of magnitude slower at high rates (E2).
type FlatFAT[A any] struct {
	combine  func(a, b A) A
	identity A

	cap   int // leaf capacity, power of two
	tree  []A // 2*cap nodes; leaves at [cap, 2*cap)
	valid []bool
	front int // physical index of logical element 0
	size  int
}

// NewFlatFAT returns an empty tree with the given identity element and
// associative combine function. initialCap is rounded up to a power of two
// (minimum 2); the tree grows automatically.
func NewFlatFAT[A any](identity A, combine func(a, b A) A, initialCap int) *FlatFAT[A] {
	c := 2
	for c < initialCap {
		c <<= 1
	}
	t := &FlatFAT[A]{combine: combine, identity: identity, cap: c}
	t.tree = make([]A, 2*c)
	t.valid = make([]bool, 2*c)
	for i := range t.tree {
		t.tree[i] = identity
	}
	return t
}

// Len returns the number of leaves currently stored.
func (t *FlatFAT[A]) Len() int { return t.size }

// Append adds a partial aggregate at the back of the window.
func (t *FlatFAT[A]) Append(a A) {
	if t.size == t.cap {
		t.grow()
	}
	pos := (t.front + t.size) % t.cap
	t.size++
	t.setLeaf(pos, a, true)
}

// UpdateBack replaces the most recently appended leaf (used to fold new
// elements into the current open slice). It panics if the tree is empty.
func (t *FlatFAT[A]) UpdateBack(a A) {
	if t.size == 0 {
		panic("agg: UpdateBack on empty FlatFAT")
	}
	pos := (t.front + t.size - 1) % t.cap
	t.setLeaf(pos, a, true)
}

// Back returns the most recently appended leaf. It panics if empty.
func (t *FlatFAT[A]) Back() A {
	if t.size == 0 {
		panic("agg: Back on empty FlatFAT")
	}
	return t.tree[t.cap+(t.front+t.size-1)%t.cap]
}

// Front returns the oldest leaf. It panics if empty.
func (t *FlatFAT[A]) Front() A {
	if t.size == 0 {
		panic("agg: Front on empty FlatFAT")
	}
	return t.tree[t.cap+t.front]
}

// EvictFront removes the oldest leaf.
func (t *FlatFAT[A]) EvictFront() {
	if t.size == 0 {
		panic("agg: EvictFront on empty FlatFAT")
	}
	t.setLeaf(t.front, t.identity, false)
	t.front = (t.front + 1) % t.cap
	t.size--
}

// Aggregate returns the combination of all leaves, or identity if empty.
func (t *FlatFAT[A]) Aggregate() A {
	return t.Range(0, t.size)
}

// Leaf returns the partial at logical index i (0 = oldest). It panics when
// out of range.
func (t *FlatFAT[A]) Leaf(i int) A {
	if i < 0 || i >= t.size {
		panic("agg: Leaf index out of range")
	}
	return t.tree[t.cap+(t.front+i)%t.cap]
}

// FoldRange combines leaves in [i, j) by a linear left fold — O(j-i)
// combines, no tree reads. It exists for the evaluation-strategy ablation
// (E11): Range answers in O(log n), FoldRange in O(n), and both must agree.
func (t *FlatFAT[A]) FoldRange(i, j int) A {
	if i < 0 {
		i = 0
	}
	if j > t.size {
		j = t.size
	}
	acc := t.identity
	first := true
	for k := i; k < j; k++ {
		leaf := t.Leaf(k)
		if first {
			acc = leaf
			first = false
		} else {
			acc = t.combine(acc, leaf)
		}
	}
	return acc
}

// Range combines leaves with logical indices in [i, j), oldest==0, in FIFO
// order. Out-of-bounds indices are clamped; an empty range yields identity.
func (t *FlatFAT[A]) Range(i, j int) A {
	if i < 0 {
		i = 0
	}
	if j > t.size {
		j = t.size
	}
	if i >= j {
		return t.identity
	}
	// Map logical to physical; the occupied region may wrap around.
	pi := (t.front + i) % t.cap
	pj := (t.front + j) % t.cap // exclusive
	if pi < pj {
		return t.rangePhysical(pi, pj)
	}
	// Wrapped: [pi, cap) then [0, pj).
	left := t.rangePhysical(pi, t.cap)
	if pj == 0 {
		return left
	}
	return t.combine(left, t.rangePhysical(0, pj))
}

// rangePhysical aggregates physical leaf positions [l, r) using the classic
// iterative segment-tree walk: O(log n) combines, preserving left-to-right
// order for non-commutative functions.
func (t *FlatFAT[A]) rangePhysical(l, r int) A {
	resL := t.identity
	resR := t.identity
	hasL, hasR := false, false
	lo := l + t.cap
	hi := r + t.cap
	for lo < hi {
		if lo&1 == 1 {
			if hasL {
				resL = t.combine(resL, t.tree[lo])
			} else {
				resL = t.tree[lo]
				hasL = true
			}
			lo++
		}
		if hi&1 == 1 {
			hi--
			if hasR {
				resR = t.combine(t.tree[hi], resR)
			} else {
				resR = t.tree[hi]
				hasR = true
			}
		}
		lo >>= 1
		hi >>= 1
	}
	switch {
	case hasL && hasR:
		return t.combine(resL, resR)
	case hasL:
		return resL
	case hasR:
		return resR
	default:
		return t.identity
	}
}

func (t *FlatFAT[A]) setLeaf(pos int, a A, valid bool) {
	i := t.cap + pos
	t.tree[i] = a
	t.valid[i] = valid
	for i >>= 1; i >= 1; i >>= 1 {
		l, r := 2*i, 2*i+1
		switch {
		case t.valid[l] && t.valid[r]:
			t.tree[i] = t.combine(t.tree[l], t.tree[r])
			t.valid[i] = true
		case t.valid[l]:
			t.tree[i] = t.tree[l]
			t.valid[i] = true
		case t.valid[r]:
			t.tree[i] = t.tree[r]
			t.valid[i] = true
		default:
			t.tree[i] = t.identity
			t.valid[i] = false
		}
	}
}

func (t *FlatFAT[A]) grow() {
	old := make([]A, 0, t.size)
	for k := 0; k < t.size; k++ {
		old = append(old, t.tree[t.cap+(t.front+k)%t.cap])
	}
	t.cap *= 2
	t.tree = make([]A, 2*t.cap)
	t.valid = make([]bool, 2*t.cap)
	for i := range t.tree {
		t.tree[i] = t.identity
	}
	t.front = 0
	t.size = 0
	for _, a := range old {
		pos := t.size
		t.size++
		t.setLeaf(pos, a, true)
	}
}
