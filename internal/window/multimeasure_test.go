package window

import (
	"math"
	"testing"
)

func TestTimeOrCountClosesOnCount(t *testing.T) {
	// maxDur huge: only the count bound (3) applies.
	ext := Drive(TimeOrCount(1_000_000, 3), Interleave(elems(1, 2, 3, 4, 5, 6, 7), math.MaxInt64))
	if len(ext) != 3 {
		t.Fatalf("got %v", ext)
	}
	if ext[0] != (Extent{Start: 1, End: 4, FromPos: 0, ToPos: 3}) {
		t.Fatalf("first = %+v", ext[0])
	}
	if ext[1].FromPos != 3 || ext[1].ToPos != 6 {
		t.Fatalf("second = %+v", ext[1])
	}
	// Final flush carries the single remaining element.
	if ext[2].FromPos != 6 || ext[2].ToPos != 7 {
		t.Fatalf("flush = %+v", ext[2])
	}
}

func TestTimeOrCountClosesOnTime(t *testing.T) {
	// maxCount huge: only the duration bound (10) applies.
	ext := Drive(TimeOrCount(10, 1_000_000), Interleave(elems(0, 3, 6, 12, 15), math.MaxInt64))
	if len(ext) != 2 {
		t.Fatalf("got %v", ext)
	}
	if ext[0] != (Extent{Start: 0, End: 10, FromPos: 0, ToPos: 3}) {
		t.Fatalf("first = %+v", ext[0])
	}
	if ext[1].FromPos != 3 || ext[1].ToPos != 5 {
		t.Fatalf("second = %+v", ext[1])
	}
}

func TestTimeOrCountMixedBounds(t *testing.T) {
	// Duration 10, count 2: dense elements close by count, a lull closes by
	// time via the watermark.
	els := elems(0, 1, 2, 3, 30)
	ext := Drive(TimeOrCount(10, 2), Interleave(els, math.MaxInt64))
	// Windows: [0,1] by count; [2,3] by count; [30] flushed.
	if len(ext) != 3 {
		t.Fatalf("got %v", ext)
	}
	if ext[0].ToPos-ext[0].FromPos != 2 || ext[1].ToPos-ext[1].FromPos != 2 {
		t.Fatalf("count bound violated: %v", ext)
	}
}

func TestTimeOrCountWatermarkClose(t *testing.T) {
	events := []Event{
		{Kind: WatermarkEvent, WM: 0},
		{Kind: ElementEvent, Elem: Element{Ts: 0, V: 1}},
		{Kind: WatermarkEvent, WM: 5}, // window [0, 10) still open
	}
	ext := Drive(TimeOrCount(10, 100), events)
	if len(ext) != 0 {
		t.Fatalf("closed too early: %v", ext)
	}
	events = append(events, Event{Kind: WatermarkEvent, WM: 10})
	ext = Drive(TimeOrCount(10, 100), events)
	if len(ext) != 1 || ext[0].End != 10 {
		t.Fatalf("not closed at wm=10: %v", ext)
	}
}

func TestTimeOrCountPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { TimeOrCount(0, 5) },
		func() { TimeOrCount(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: no window ever exceeds either bound.
func TestTimeOrCountBoundsProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		els := make([]Element, 100)
		var ts int64
		for i := range els {
			ts += (seed*7 + int64(i)*13) % 9
			els[i] = Element{Ts: ts}
		}
		ext := Drive(TimeOrCount(20, 5), Interleave(els, math.MaxInt64))
		covered := int64(0)
		for _, e := range ext {
			if e.ToPos-e.FromPos > 5 {
				t.Fatalf("seed %d: count bound exceeded: %+v", seed, e)
			}
			if els[e.ToPos-1].Ts-e.Start >= 20+20 { // content within duration (+slack for flush)
				t.Fatalf("seed %d: duration wildly exceeded: %+v", seed, e)
			}
			covered += e.ToPos - e.FromPos
		}
		if covered != 100 {
			t.Fatalf("seed %d: %d of 100 elements covered", seed, covered)
		}
	}
}
