package dataflow

import (
	"fmt"

	"repro/internal/metrics"
)

// SplitScanSource generalizes the splittable at-rest scan beyond plain
// files: any input that can open a byte-range split and iterate records
// plugs into the same ScanPlan machinery — dynamic split assignment,
// (split id, position) snapshots, seek-based restore at any parallelism.
// The segment-log topic source is the first such input; its plan uses
// ScanPlan.FixedSplits because topic segments are not expanded from the
// filesystem.

// SplitReader is the per-subtask reader a SplitScanSource drives. OpenSplit
// positions the reader on a split: resumeAt < 0 means a fresh split (align
// to the first record starting at or after sp.Start), resumeAt >= 0 resumes
// at that exact position — whatever Pos returned when the snapshot was
// taken. The reader owns the alignment contract (a record straddling End
// belongs to the split it starts in) and reports exhaustion with ok=false.
type SplitReader interface {
	OpenSplit(sp Split, resumeAt int64) error
	// NextInSplit returns the next record of the open split; ok=false marks
	// its clean end.
	NextInSplit() (r Record, ok bool, err error)
	// Pos is the resume position of the next unread record, in whatever
	// coordinate OpenSplit accepts as resumeAt.
	Pos() int64
	// Bytes reports the input bytes consumed since the last call (metrics).
	Bytes() int64
	Close() error
}

// SplitScanSource is one subtask of a splittable scan over a SplitReader.
// All subtasks of a stage share one Plan; each owns its Reader.
type SplitScanSource struct {
	Plan                 *ScanPlan
	Subtask, Parallelism int
	Reader               SplitReader

	err    error
	done   bool
	cur    splitCursor
	hasCur bool

	completed []int

	mRecords, mBytes, mSplits          *metrics.Counter
	pendRecords, pendBytes, pendSplits int64
}

var (
	_ MultiRestorable = (*SplitScanSource)(nil)
	_ SourceOpener    = (*SplitScanSource)(nil)
	_ Failable        = (*SplitScanSource)(nil)
)

// OpenSource implements SourceOpener: registers the scan's per-node
// observability counters (same series as the file scan).
func (s *SplitScanSource) OpenSource(ctx *OpContext) {
	s.Plan.SetOwnedSubtasks(ctx.LocalSubtasks, ctx.Parallelism)
	if ctx.Metrics == nil {
		return
	}
	s.mRecords = ctx.Metrics.Counter("node." + ctx.NodeName + ".records_out")
	s.mBytes = ctx.Metrics.Counter("node." + ctx.NodeName + ".bytes_scanned")
	s.mSplits = ctx.Metrics.Counter("node." + ctx.NodeName + ".splits_completed")
}

func (s *SplitScanSource) flushMetrics() {
	if s.mRecords != nil && s.pendRecords != 0 {
		s.mRecords.Add(s.pendRecords)
		s.pendRecords = 0
	}
	if s.mBytes != nil && s.pendBytes != 0 {
		s.mBytes.Add(s.pendBytes)
		s.pendBytes = 0
	}
	if s.mSplits != nil && s.pendSplits != 0 {
		s.mSplits.Add(s.pendSplits)
		s.pendSplits = 0
	}
}

// Unordered: dynamic split assignment may jump backward in position between
// splits, like the file scan.
func (s *SplitScanSource) Unordered() bool { return true }

// Err implements Failable.
func (s *SplitScanSource) Err() error { return s.err }

func (s *SplitScanSource) fail(err error) (Record, bool) {
	s.err = err
	s.Reader.Close()
	return Record{}, false
}

// Next implements SourceFunc: pull a split, drain it, repeat.
func (s *SplitScanSource) Next() (Record, bool) {
	if s.err != nil || s.done {
		return Record{}, false
	}
	for {
		if !s.hasCur {
			c, ok, err := s.Plan.acquire()
			if err != nil {
				return s.fail(err)
			}
			if !ok {
				s.done = true
				s.Reader.Close()
				s.flushMetrics()
				return Record{}, false
			}
			if err := s.Reader.OpenSplit(c.split, c.offset); err != nil {
				return s.fail(fmt.Errorf("scan %q split %d: %w", c.split.Path, c.split.ID, err))
			}
			s.cur, s.hasCur = c, true
		}
		r, ok, err := s.Reader.NextInSplit()
		if err != nil {
			return s.fail(fmt.Errorf("scan %q split %d: %w", s.cur.split.Path, s.cur.split.ID, err))
		}
		if ok {
			s.pendRecords++
			s.pendBytes += s.Reader.Bytes()
			return r, true
		}
		s.completed = append(s.completed, s.cur.split.ID)
		s.pendSplits++
		s.pendBytes += s.Reader.Bytes()
		s.hasCur = false
		s.flushMetrics()
	}
}

// Snapshot implements SourceFunc with the same versioned state as the file
// scan (splitScanState): completed split IDs, the in-flight split's resume
// position, and — on subtask 0 — the restored-pending carry and the plan's
// geometry signature.
func (s *SplitScanSource) Snapshot() ([]byte, error) {
	s.flushMetrics()
	st := splitScanState{V: splitStateVersion, Completed: s.completed, CurID: -1, Legacy: -1}
	if s.hasCur {
		st.CurID = s.cur.split.ID
		st.CurPath = s.cur.split.Path
		st.CurOff = s.Reader.Pos()
	}
	if s.Subtask == 0 {
		st.Pending = s.Plan.pendingResumed()
		sig, err := s.Plan.signature()
		if err != nil {
			return nil, err
		}
		st.Plan = sig
	}
	return encodeScanState(st)
}

// Restore implements SourceFunc for single-subtask stages; multi-subtask
// stages restore through RestoreAll.
func (s *SplitScanSource) Restore(blob []byte) error {
	return s.RestoreAll(s.Subtask, s.Parallelism, map[int][]byte{s.Subtask: blob})
}

// RestoreAll implements MultiRestorable: the shared plan rebuilds the split
// queue once from every subtask's blob (pending = planned − completed,
// in-flight splits resume at their recorded positions), so the restoring
// stage may run at any parallelism.
func (s *SplitScanSource) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	if subtask != s.Subtask || parallelism != s.Parallelism {
		return fmt.Errorf("scan restore: RestoreAll(%d/%d) does not match the reader's subtask %d/%d", subtask, parallelism, s.Subtask, s.Parallelism)
	}
	if err := s.Plan.restoreFrom(blobs, s.Parallelism); err != nil {
		return err
	}
	s.err, s.done, s.hasCur = nil, false, false
	_, legacyMode, carry := s.Plan.restoredState(s.Subtask)
	if legacyMode {
		return fmt.Errorf("scan restore: legacy source state cannot restore a fixed-split source")
	}
	s.completed = carry
	return nil
}
