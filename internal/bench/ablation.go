package bench

import (
	"fmt"
	"time"

	"repro/internal/agg"
	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/window"
)

// E11Ablation isolates the design choices called out in DESIGN.md:
//
//   - window evaluation strategy inside Cutty: FlatFAT range queries
//     (O(log s) per window) vs a linear fold over the window's slices
//     (O(s) per window) — the tree matters once windows span many slices;
//   - sliding-window state structures at the agg layer: FlatFAT vs
//     two-stacks vs subtract-on-evict for an invertible function.
func E11Ablation(quick bool) *Table {
	n := int64(100_000)
	if quick {
		n = 20_000
	}
	t := &Table{
		ID:     "E11",
		Title:  "ablations: window evaluation strategy and state structures",
		Claim:  "design choices behind the Cutty engine (DESIGN.md §5)",
		Header: []string{"variant", "workload", "throughput"},
	}

	// Cutty evaluation strategy: many slices per window (range 60s, slide
	// 250ms -> 240 slices/window).
	for _, wl := range []struct {
		name    string
		queries []engine.Query
	}{
		{
			// Sparse fires: one query, windows complete every 250 events.
			"1 query, sliding 60s/250ms",
			[]engine.Query{{Window: window.Sliding(60_000, 250), Fn: agg.SumF64()}},
		},
		{
			// Dense fires: 30 queries over the shared slice store, so a
			// window completes almost every event — range queries dominate.
			"30 queries, sliding 10-60s/100-1000ms",
			func() []engine.Query {
				qs := make([]engine.Query, 30)
				for i := range qs {
					slide := int64(i%10+1) * 100
					qs[i] = engine.Query{Window: window.Sliding(slide*int64(i%6+10), slide), Fn: agg.SumF64()}
				}
				return qs
			}(),
		},
	} {
		for _, cfg := range []struct {
			name string
			opts []cutty.Option
		}{
			{"cutty tree eval", nil},
			{"cutty linear eval", []cutty.Option{cutty.WithLinearEval()}},
		} {
			e := cutty.New(func(engine.Result) {}, cfg.opts...)
			bad := false
			for _, q := range wl.queries {
				if _, err := e.AddQuery(q); err != nil {
					t.Note("%s: %v", cfg.name, err)
					bad = true
					break
				}
			}
			if bad {
				continue
			}
			res := Drive(e, n, func(i int64) int64 { return i }, func(i int64) float64 { return float64(i % 97) })
			t.Add(cfg.name, wl.name, fmtRate(res.Throughput()))
		}
	}

	// State structures: FIFO sliding sum, window of 1024 partials.
	const win = 1024
	sum := agg.SumF64()
	fns := []struct {
		name string
		run  func() float64
	}{
		{"flatfat", func() float64 {
			tr := agg.NewFlatFAT(sum.Identity, sum.Combine, win)
			start := time.Now()
			for i := int64(0); i < n; i++ {
				tr.Append(sum.Lift(float64(i % 97)))
				if tr.Len() > win {
					tr.EvictFront()
				}
				_ = tr.Aggregate()
			}
			return float64(n) / time.Since(start).Seconds()
		}},
		{"two-stacks", func() float64 {
			ts := agg.NewTwoStacks(sum.Identity, sum.Combine)
			start := time.Now()
			for i := int64(0); i < n; i++ {
				ts.Push(sum.Lift(float64(i % 97)))
				if ts.Len() > win {
					ts.PopFront()
				}
				_ = ts.Aggregate()
			}
			return float64(n) / time.Since(start).Seconds()
		}},
		{"subtract-on-evict", func() float64 {
			se := agg.NewSubtractOnEvict(sum)
			start := time.Now()
			for i := int64(0); i < n; i++ {
				se.Push(sum.Lift(float64(i % 97)))
				if se.Len() > win {
					se.PopFront()
				}
				_ = se.Aggregate()
			}
			return float64(n) / time.Since(start).Seconds()
		}},
	}
	for _, f := range fns {
		t.Add(f.name, fmt.Sprintf("FIFO sum, window %d", win), fmtRate(f.run()))
	}
	t.Note("subtract-on-evict applies only to invertible functions (sum/count/avg)")
	return t
}
