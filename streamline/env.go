package streamline

import (
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/state"
)

// Exchange defaults, re-exported from the engine: records cross subtask
// boundaries in pooled batches of DefaultBatchSize, and a staged record
// waits at most DefaultFlushInterval before being shipped.
const (
	DefaultBatchSize     = dataflow.DefaultBatchSize
	DefaultFlushInterval = dataflow.DefaultFlushInterval
)

// DefaultNumKeyGroups is the key-group count of plans that do not set
// WithNumKeyGroups — the granularity at which keyed state partitions,
// checkpoints and redistributes across rescales.
const DefaultNumKeyGroups = state.DefaultNumKeyGroups

// Env owns a pipeline under construction and its execution options. It is a
// thin typed veneer over core.Environment; one Env builds one job.
type Env struct {
	core *core.Environment

	// reg is the lazily created metrics registry (see Metrics); regOnce
	// guards its creation.
	reg     *metrics.Registry
	regOnce sync.Once

	// restartStats is the recovery trajectory of the last supervised run
	// (see RestartStats).
	restartStats []RestartStat
}

// Option configures an Env at construction.
type Option = core.Option

// CombinerMode controls automatic pre-aggregation before hash shuffles.
type CombinerMode = core.CombinerMode

// Combiner modes, re-exported so pipelines need only this package.
const (
	// CombinerAuto samples the key distribution at runtime and enables
	// combining when it is profitable (the default).
	CombinerAuto = core.CombinerAuto
	// CombinerOn always pre-aggregates.
	CombinerOn = core.CombinerOn
	// CombinerOff never pre-aggregates (ablation baseline).
	CombinerOff = core.CombinerOff
)

// Backend persists checkpoints for exactly-once recovery.
type Backend = state.Backend

// Snapshot is one completed checkpoint: every subtask's serialized state.
// Backends hand it back for recovery via Latest or Load.
type Snapshot = state.Snapshot

// WithParallelism sets the default operator parallelism. Zero (default)
// means "adapt to the architecture": the machine's CPU count, capped at 4.
func WithParallelism(p int) Option { return core.WithParallelism(p) }

// WithChaining toggles operator chaining (default on).
func WithChaining(on bool) Option { return core.WithChaining(on) }

// WithVectorizedChains toggles the engine's batch-at-a-time fast path through
// operator chains (default on). Purely physical: results are identical either
// way, at any batch size.
func WithVectorizedChains(on bool) Option { return core.WithVectorizedChains(on) }

// WithVectorizedKeyedOps toggles the keyed half of that fast path (default
// on): keyed operators process whole data runs with run-grouped state access
// and the exchange stager hash-routes a run in one pass. No effect when
// WithVectorizedChains is off. Purely physical: the logical plan, all
// results and every checkpoint are identical either way.
func WithVectorizedKeyedOps(on bool) Option { return core.WithVectorizedKeyedOps(on) }

// WithStageFusion toggles typed stage fusion (default on): runs of adjacent
// Map/Filter/FlatMap stages lower into one fused operator that keeps values
// in their concrete type across stages — one unbox at chain entry, one box at
// exit. Fused node names concatenate the stage names with "+", so the lowered
// plan (and its distributed fingerprint) is deterministic for a given
// setting; results are identical with fusion on or off.
func WithStageFusion(on bool) Option { return core.WithStageFusion(on) }

// WithCombiner sets the combiner mode (default CombinerAuto).
func WithCombiner(m CombinerMode) Option { return core.WithCombiner(m) }

// WithCheckpointing enables asynchronous barrier snapshots on the given
// backend at the given interval.
func WithCheckpointing(b Backend, every time.Duration) Option {
	return core.WithCheckpointing(b, every)
}

// WithStateBackend sets the snapshot backend without enabling periodic
// checkpoints — pair it with ExecuteRestored on the recovery side of a job
// whose writing side ran WithCheckpointing.
func WithStateBackend(b Backend) Option { return core.WithStateBackend(b) }

// WithNumKeyGroups sets the plan's key-group count (default
// DefaultNumKeyGroups) — the unit of keyed-state partitioning and hash
// routing. Purely physical for results (identical at every value and any
// parallelism) but a plan constant for recovery: a checkpoint restores only
// into a plan with the same value. Pick it comfortably above the largest
// parallelism the job may ever rescale to and keep it.
func WithNumKeyGroups(n int) Option { return core.WithNumKeyGroups(n) }

// WithBatchSize sets how many records the exchange layer stages per batch
// before shipping it across a subtask boundary (default 64). Bigger batches
// amortize channel hops and raise throughput; 1 degenerates to per-record
// exchange (the ablation baseline). Purely physical: the logical plan and
// its results are identical at every batch size.
func WithBatchSize(n int) Option { return core.WithBatchSize(n) }

// WithFlushInterval bounds how long a record may wait in an exchange staging
// buffer before being shipped downstream (default 10ms) — the latency lever
// for in-motion sources, trading a little throughput for freshness. Negative
// disables the periodic flush; batches then ship only when full or at
// watermarks, barriers and end-of-stream.
func WithFlushInterval(d time.Duration) Option { return core.WithFlushInterval(d) }

// NewMemoryBackend returns an in-memory checkpoint backend retaining the
// last `retain` snapshots (0 keeps all).
func NewMemoryBackend(retain int) Backend { return state.NewMemoryBackend(retain) }

// NewFileBackend returns a durable checkpoint backend persisting each
// snapshot as a file under dir (created if needed) — the backend to use
// when a job must survive process restarts or restore at a different
// parallelism in a new process.
func NewFileBackend(dir string) (Backend, error) { return state.NewFileBackend(dir) }

// New returns an empty pipeline environment.
func New(opts ...Option) *Env {
	return &Env{core: core.NewEnvironment(opts...)}
}

// Execute runs the pipeline to completion (bounded sources) or until the
// context is cancelled (unbounded sources).
func (e *Env) Execute(ctx context.Context) error { return e.core.Execute(ctx) }

// ExecuteRestored runs the pipeline starting from a recovery snapshot:
// every operator and source subtask is handed its checkpointed state before
// processing. Rebuild the identical pipeline on a fresh Env, then resume
// with the snapshot from the backend's Latest.
func (e *Env) ExecuteRestored(ctx context.Context, snap *Snapshot) error {
	return e.core.ExecuteRestored(ctx, snap)
}

// CompletedCheckpoints reports the number of persisted checkpoints of the
// last Execute call.
func (e *Env) CompletedCheckpoints() int64 { return e.core.CompletedCheckpoints() }

// Core exposes the untyped lowering environment this Env builds onto —
// the escape hatch for diagnostics, plan inspection, and tests that
// compare typed plans against hand-built untyped ones.
func (e *Env) Core() *core.Environment { return e.core }
