// Command streamline-repl is the interactive development environment of the
// I2 research highlight, reduced to its coordination essence: a live stream
// runs continuously while the analyst adds and removes window aggregation
// queries *interactively* — the Cutty engine shares slices between whatever
// queries are registered at any moment, and results stream to the console
// as windows complete.
//
//	go run ./cmd/streamline-repl -rate 2000
//
// Commands:
//
//	add tumbling <size-ms> <fn>          e.g. add tumbling 1000 sum
//	add sliding <size-ms> <slide-ms> <fn>
//	add session <gap-ms> <fn>
//	add count <n> <fn>
//	add timeorcount <dur-ms> <n> <fn>
//	remove <query-id>
//	persist <topic> | persist off        append the live stream to a topic
//	from topic <name>                    replay a topic through the queries
//	topics                               list the store's topics
//	list | stats | show <n> | help | quit
//
// Aggregate functions: sum count min max avg var.
//
// The topic commands work against an embedded segment-log store (-store DIR,
// default a fresh temp directory): persist appends every live element as it
// is pumped, and `from topic` runs the currently registered queries once over
// the stored history — the same queries over data at rest and in motion.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cutty"
	"repro/internal/engine"
	"repro/internal/seglog"
	"repro/internal/workloads"
)

func main() {
	rate := flag.Int64("rate", 2000, "stream rate (events/second)")
	storeDir := flag.String("store", "", "topic store directory (default: a fresh temp dir)")
	flag.Parse()

	r := newRepl(*rate)
	r.storeDir = *storeDir
	go r.pump()

	fmt.Println("streamline-repl — live stream running; type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := sc.Text()
		out, quit := r.Eval(line)
		if out != "" {
			fmt.Println(out)
		}
		if quit {
			return
		}
		fmt.Print("> ")
	}
}

// repl owns the live engine; Eval is synchronous and testable.
type repl struct {
	mu      sync.Mutex
	eng     *cutty.Engine
	queries map[int]string       // id -> description
	specs   map[int]engine.Query // id -> spec, so `from topic` can re-register
	results []engine.Result
	rate    int64
	stop    chan struct{}

	storeDir    string        // -store flag; empty means a fresh temp dir
	store       *seglog.Store // opened lazily on first topic command
	persist     *seglog.Topic // nil unless `persist <topic>` is active
	persistName string
}

func newRepl(rate int64) *repl {
	r := &repl{
		queries: make(map[int]string),
		specs:   make(map[int]engine.Query),
		rate:    rate,
		stop:    make(chan struct{}),
	}
	r.eng = cutty.New(func(res engine.Result) {
		r.results = append(r.results, res)
		if len(r.results) > 10000 {
			r.results = append(r.results[:0], r.results[5000:]...)
		}
	})
	return r
}

// pump feeds the live stream, paced to wall clock.
func (r *repl) pump() {
	gen := workloads.TimeSeries{Seed: time.Now().UnixNano(), PerSec: r.rate}
	start := time.Now()
	for i := int64(0); ; i++ {
		select {
		case <-r.stop:
			return
		default:
		}
		e := gen.At(i)
		due := start.Add(time.Duration(e.Ts) * time.Millisecond)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		r.mu.Lock()
		r.eng.OnWatermark(e.Ts)
		r.eng.OnElement(e.Ts, e.Value)
		if r.persist != nil {
			data, _ := json.Marshal(topicEvent{Ts: e.Ts, V: e.Value})
			if _, err := r.persist.Append(e.Ts, 0, data); err != nil {
				fmt.Fprintf(os.Stderr, "persist %s: %v (stopping persist)\n", r.persistName, err)
				r.persist, r.persistName = nil, ""
			}
		}
		r.mu.Unlock()
	}
}

// topicEvent is the JSON shape persisted to and replayed from topics.
type topicEvent struct {
	Ts int64   `json:"ts"`
	V  float64 `json:"v"`
}

// openStore lazily opens the segment-log store; callers hold r.mu.
func (r *repl) openStore() error {
	if r.store != nil {
		return nil
	}
	dir := r.storeDir
	if dir == "" {
		d, err := os.MkdirTemp("", "streamline-repl-topics")
		if err != nil {
			return err
		}
		dir = d
	}
	st, err := seglog.Open(dir, seglog.Options{})
	if err != nil {
		return err
	}
	r.store = st
	return nil
}

// Eval executes one command line and returns the response text and whether
// the session should end.
func (r *repl) Eval(line string) (string, bool) {
	cmd, err := Parse(line)
	if err != nil {
		return "error: " + err.Error(), false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch cmd.Kind {
	case CmdNop:
		return "", false
	case CmdQuit:
		close(r.stop)
		if r.store != nil {
			r.store.Close()
		}
		return "bye", true
	case CmdHelp:
		return helpText, false
	case CmdAdd:
		id, err := r.eng.AddQuery(engine.Query{Window: cmd.Spec, Fn: cmd.Fn})
		if err != nil {
			return "error: " + err.Error(), false
		}
		r.queries[id] = cmd.Desc
		r.specs[id] = engine.Query{Window: cmd.Spec, Fn: cmd.Fn}
		return fmt.Sprintf("query %d registered: %s", id, cmd.Desc), false
	case CmdRemove:
		if _, ok := r.queries[cmd.N]; !ok {
			return fmt.Sprintf("error: no query %d", cmd.N), false
		}
		r.eng.RemoveQuery(cmd.N)
		delete(r.queries, cmd.N)
		delete(r.specs, cmd.N)
		return fmt.Sprintf("query %d removed", cmd.N), false
	case CmdTopics:
		if err := r.openStore(); err != nil {
			return "error: " + err.Error(), false
		}
		names, err := r.store.Topics()
		if err != nil {
			return "error: " + err.Error(), false
		}
		if len(names) == 0 {
			return fmt.Sprintf("no topics in %s", r.store.Dir()), false
		}
		out := fmt.Sprintf("topics in %s:\n", r.store.Dir())
		for _, name := range names {
			tp, err := r.store.Topic(name)
			if err != nil {
				out += fmt.Sprintf("  %s: error: %v\n", name, err)
				continue
			}
			v, err := tp.View()
			if err != nil {
				out += fmt.Sprintf("  %s: error: %v\n", name, err)
				continue
			}
			var bytes int64
			for _, seg := range v.Segments {
				bytes += seg.Bytes
			}
			tag := ""
			if name == r.persistName {
				tag = "  (persisting)"
			}
			out += fmt.Sprintf("  %s: %d records, %d segments, %d bytes%s\n",
				name, v.Next-v.Oldest, len(v.Segments), bytes, tag)
		}
		return out[:len(out)-1], false
	case CmdPersist:
		if cmd.Name == "off" {
			if r.persist == nil {
				return "persist is not active", false
			}
			name := r.persistName
			tp := r.persist
			r.persist, r.persistName = nil, ""
			if err := tp.Sync(); err != nil {
				return "error: sync " + name + ": " + err.Error(), false
			}
			return fmt.Sprintf("persist to %q stopped (%d records stored)", name, tp.NextOffset()), false
		}
		if err := r.openStore(); err != nil {
			return "error: " + err.Error(), false
		}
		tp, err := r.store.Topic(cmd.Name)
		if err != nil {
			return "error: " + err.Error(), false
		}
		r.persist, r.persistName = tp, cmd.Name
		return fmt.Sprintf("persisting live stream to %q in %s (persist off to stop)",
			cmd.Name, r.store.Dir()), false
	case CmdFromTopic:
		if err := r.openStore(); err != nil {
			return "error: " + err.Error(), false
		}
		return r.replayTopic(cmd.Name), false
	case CmdList:
		if len(r.queries) == 0 {
			return "no queries registered", false
		}
		out := ""
		for id := 0; id < 1<<20; id++ {
			d, ok := r.queries[id]
			if ok {
				out += fmt.Sprintf("  %d: %s\n", id, d)
			}
			if len(out) > 0 && id > len(r.queries)*8 {
				break
			}
		}
		return out[:len(out)-1], false
	case CmdStats:
		return fmt.Sprintf("queries=%d live-slices=%d stored-partials=%d results=%d",
			len(r.queries), r.eng.Slices(), r.eng.StoredPartials(), len(r.results)), false
	case CmdShow:
		n := cmd.N
		if n <= 0 {
			n = 5
		}
		if n > len(r.results) {
			n = len(r.results)
		}
		if n == 0 {
			return "no results yet", false
		}
		out := ""
		for _, res := range r.results[len(r.results)-n:] {
			out += fmt.Sprintf("  q%d window [%d,%d) value=%.3f count=%d\n",
				res.QueryID, res.Start, res.End, res.Value, res.Count)
		}
		return out[:len(out)-1], false
	}
	return "error: unhandled command", false
}

// replayTopic runs the currently registered queries once over a stored
// topic's history: a fresh Cutty engine, the same specs, a bounded read of
// everything appended so far. Callers hold r.mu.
func (r *repl) replayTopic(name string) string {
	if len(r.specs) == 0 {
		return "error: no queries registered (add one first)"
	}
	tp, err := r.store.Topic(name)
	if err != nil {
		return "error: " + err.Error()
	}
	end := tp.NextOffset()
	if end == tp.OldestOffset() {
		return fmt.Sprintf("topic %q is empty", name)
	}

	var wins []engine.Result
	replay := cutty.New(func(res engine.Result) { wins = append(wins, res) })
	ids := make([]int, 0, len(r.specs))
	for id := range r.specs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, err := replay.AddQuery(r.specs[id]); err != nil {
			return "error: " + err.Error()
		}
	}

	rd, err := tp.ReadFrom(tp.OldestOffset())
	if err != nil {
		return "error: " + err.Error()
	}
	defer rd.Close()
	var records, skipped int64
	minTs, maxTs := int64(0), int64(0)
	for rd.Pos() < end {
		rec, ok, err := rd.Next()
		if err != nil {
			return "error: " + err.Error()
		}
		if !ok {
			break // a concurrent truncation shrank the topic; stop cleanly
		}
		var e topicEvent
		if err := json.Unmarshal(rec.Payload, &e); err != nil {
			skipped++
			continue
		}
		if records == 0 || e.Ts < minTs {
			minTs = e.Ts
		}
		if records == 0 || e.Ts > maxTs {
			maxTs = e.Ts
		}
		records++
		replay.OnWatermark(e.Ts)
		replay.OnElement(e.Ts, e.V)
	}
	// Push the watermark past the last element so every complete window fires.
	replay.OnWatermark(maxTs + 1)

	out := fmt.Sprintf("replayed %d records from %q (ts %d..%d) through %d queries: %d windows",
		records, name, minTs, maxTs, len(ids), len(wins))
	if skipped > 0 {
		out += fmt.Sprintf(" (%d undecodable records skipped)", skipped)
	}
	n := len(wins)
	if n > 5 {
		wins = wins[n-5:]
	}
	for _, res := range wins {
		out += fmt.Sprintf("\n  q%d window [%d,%d) value=%.3f count=%d",
			res.QueryID, res.Start, res.End, res.Value, res.Count)
	}
	return out
}

const helpText = `commands:
  add tumbling <size-ms> <fn>
  add sliding <size-ms> <slide-ms> <fn>
  add session <gap-ms> <fn>
  add count <n> <fn>
  add timeorcount <dur-ms> <n> <fn>
  remove <query-id>
  persist <topic> | persist off
  from topic <name>
  topics
  list | stats | show <n> | help | quit
functions: sum count min max avg var`
