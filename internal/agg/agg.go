// Package agg implements STREAMLINE's aggregation framework.
//
// Two layers are provided:
//
//   - A generic, type-safe layer (Function[In, Acc, Out]) used by the public
//     pipeline API. Aggregates are expressed in lift/combine/lower form:
//     Lift turns one input element into a partial aggregate, Combine merges
//     two partials (and must be associative), and Lower finalizes a partial
//     into an output. This is the decomposition Cutty requires for slicing.
//
//   - A monomorphic float64 layer (FnF64 over Acc) shared by the window
//     aggregation engines in internal/cutty and internal/baselines, so that
//     strategy comparisons measure algorithmic cost rather than boxing
//     overhead.
//
// The package also provides the partial-aggregation data structures the
// engines build on: FlatFAT (a flat aggregate tree with O(log n) updates and
// range queries), TwoStacks (amortized O(1) FIFO sliding aggregation) and a
// Naive reference used as the oracle in tests.
package agg

// Function is a decomposable aggregate over typed inputs.
//
// Combine must be associative: Combine(a, Combine(b, c)) == Combine(Combine(a, b), c).
// If the aggregate is also commutative the engines may reorder partials; see
// Commutative.
type Function[In, Acc, Out any] interface {
	// CreateAccumulator returns the identity partial aggregate.
	CreateAccumulator() Acc
	// Lift converts one input element into a partial aggregate.
	Lift(In) Acc
	// Combine merges two partial aggregates. It must be associative and
	// must not mutate its arguments.
	Combine(a, b Acc) Acc
	// Lower finalizes a partial aggregate into the output type.
	Lower(Acc) Out
}

// Commutative is an optional marker interface: aggregates that implement it
// and return true permit the engine to combine partials in any order.
type Commutative interface {
	Commutative() bool
}

// Invertible is an optional capability: aggregates that can subtract a
// partial from a combined partial (e.g. sum, count) allow engines such as
// subtract-on-evict to run in O(1) per eviction.
type Invertible[Acc any] interface {
	// Invert removes b from a, i.e. Invert(Combine(a,b), b) == a.
	Invert(a, b Acc) Acc
}

// fnAdapter builds a Function from plain closures.
type fnAdapter[In, Acc, Out any] struct {
	create  func() Acc
	lift    func(In) Acc
	combine func(a, b Acc) Acc
	lower   func(Acc) Out
}

func (f fnAdapter[In, Acc, Out]) CreateAccumulator() Acc { return f.create() }
func (f fnAdapter[In, Acc, Out]) Lift(v In) Acc          { return f.lift(v) }
func (f fnAdapter[In, Acc, Out]) Combine(a, b Acc) Acc   { return f.combine(a, b) }
func (f fnAdapter[In, Acc, Out]) Lower(a Acc) Out        { return f.lower(a) }

// NewFunction assembles a Function from closures. combine must be
// associative.
func NewFunction[In, Acc, Out any](
	create func() Acc,
	lift func(In) Acc,
	combine func(a, b Acc) Acc,
	lower func(Acc) Out,
) Function[In, Acc, Out] {
	return fnAdapter[In, Acc, Out]{create: create, lift: lift, combine: combine, lower: lower}
}
