package window

import "encoding/gob"

// Checkpointable is implemented by assigners whose mutable state can be
// saved and restored across failures. The recovery path first reconstructs
// the assigner from its Spec factory (which carries the immutable
// parameters and any closures) and then calls LoadState, so only mutable
// fields are serialized.
type Checkpointable interface {
	SaveState(enc *gob.Encoder) error
	LoadState(dec *gob.Decoder) error
}

type slidingState struct {
	Open        []int64
	NextStart   int64
	Initialized bool
}

// SaveState implements Checkpointable.
func (a *slidingAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(slidingState{Open: a.open, NextStart: a.nextStart, Initialized: a.initialized})
}

// LoadState implements Checkpointable.
func (a *slidingAssigner) LoadState(dec *gob.Decoder) error {
	var s slidingState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.open, a.nextStart, a.initialized = s.Open, s.NextStart, s.Initialized
	return nil
}

type sessionState struct {
	Active bool
	Start  int64
	LastTs int64
}

// SaveState implements Checkpointable.
func (a *sessionAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(sessionState{Active: a.active, Start: a.start, LastTs: a.lastTs})
}

// LoadState implements Checkpointable.
func (a *sessionAssigner) LoadState(dec *gob.Decoder) error {
	var s sessionState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.active, a.start, a.lastTs = s.Active, s.Start, s.LastTs
	return nil
}

type countState struct {
	Open []int64
}

// SaveState implements Checkpointable.
func (a *countAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(countState{Open: a.open})
}

// LoadState implements Checkpointable.
func (a *countAssigner) LoadState(dec *gob.Decoder) error {
	var s countState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.open = s.Open
	return nil
}

type punctuationState struct {
	Active bool
	Start  int64
}

// SaveState implements Checkpointable.
func (a *punctuationAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(punctuationState{Active: a.active, Start: a.start})
}

// LoadState implements Checkpointable.
func (a *punctuationAssigner) LoadState(dec *gob.Decoder) error {
	var s punctuationState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.active, a.start = s.Active, s.Start
	return nil
}

type deltaState struct {
	Active bool
	Start  int64
	Ref    float64
}

// SaveState implements Checkpointable.
func (a *deltaAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(deltaState{Active: a.active, Start: a.start, Ref: a.ref})
}

// LoadState implements Checkpointable.
func (a *deltaAssigner) LoadState(dec *gob.Decoder) error {
	var s deltaState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.active, a.start, a.ref = s.Active, s.Start, s.Ref
	return nil
}

type sessionMaxState struct {
	Active bool
	Start  int64
	LastTs int64
}

// SaveState implements Checkpointable.
func (a *sessionMaxAssigner) SaveState(enc *gob.Encoder) error {
	return enc.Encode(sessionMaxState{Active: a.active, Start: a.start, LastTs: a.lastTs})
}

// LoadState implements Checkpointable.
func (a *sessionMaxAssigner) LoadState(dec *gob.Decoder) error {
	var s sessionMaxState
	if err := dec.Decode(&s); err != nil {
		return err
	}
	a.active, a.start, a.lastTs = s.Active, s.Start, s.LastTs
	return nil
}
