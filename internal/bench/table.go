// Package bench implements the STREAMLINE experiment suite E1–E10 (see
// DESIGN.md section 4): each experiment regenerates one table of the
// evaluation, driving the same engines and pipelines the library ships.
// The cmd/streamline-bench binary prints the tables; the root bench_test.go
// exposes the same measurements as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid plus free-form notes.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "   claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "   %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
}

// fmtRate renders an events/second rate compactly.
func fmtRate(evPerSec float64) string {
	switch {
	case evPerSec >= 1e6:
		return fmt.Sprintf("%.2fM/s", evPerSec/1e6)
	case evPerSec >= 1e3:
		return fmt.Sprintf("%.0fk/s", evPerSec/1e3)
	default:
		return fmt.Sprintf("%.0f/s", evPerSec)
	}
}

// fmtCount renders a large count compactly.
func fmtCount(n float64) string {
	switch {
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", n/1e3)
	case n == float64(int64(n)):
		return fmt.Sprintf("%.0f", n)
	default:
		return fmt.Sprintf("%.2f", n)
	}
}
