package baselines

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/engine"
	"repro/internal/window"
)

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{12, 8, 4}, {8, 12, 4}, {7, 3, 1}, {0, 5, 5}, {5, 0, 5}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := gcd64(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorTo(t *testing.T) {
	cases := []struct{ t_, m, r, want int64 }{
		{10, 5, 0, 10},
		{12, 5, 0, 10},
		{12, 5, 2, 12},
		{11, 5, 2, 7},
		{-3, 5, 0, -5},
		{2, 5, 2, 2},
	}
	for _, c := range cases {
		if got := floorTo(c.t_, c.m, c.r); got != c.want {
			t.Errorf("floorTo(%d,%d,%d) = %d, want %d", c.t_, c.m, c.r, got, c.want)
		}
	}
}

func TestPanesScheduleGCD(t *testing.T) {
	s := &panesSchedule{}
	s.rebuild([]engine.Query{
		{Window: window.Sliding(12, 8)},
		{Window: window.Sliding(6, 6)},
	})
	// gcd(gcd(12,8), gcd(6,6)) = gcd(4, 6) = 2
	if s.g != 2 {
		t.Fatalf("g = %d, want 2", s.g)
	}
	if s.boundaryAtOrBefore(7) != 6 || s.boundaryAfter(7) != 8 {
		t.Fatalf("boundaries wrong: %d / %d", s.boundaryAtOrBefore(7), s.boundaryAfter(7))
	}
}

func TestPanesEmptyScheduleDefaults(t *testing.T) {
	s := &panesSchedule{}
	s.rebuild(nil)
	if s.g != 1 {
		t.Fatalf("empty schedule g = %d, want 1", s.g)
	}
}

func TestPairsScheduleBoundaries(t *testing.T) {
	s := &pairsSchedule{}
	s.rebuild([]engine.Query{{Window: window.Sliding(7, 3)}})
	// Boundaries at t ≡ 0 (mod 3) and t ≡ 1 (mod 3): 0,1,3,4,6,7,9,...
	wantAfter := map[int64]int64{0: 1, 1: 3, 2: 3, 3: 4, 4: 6, 6: 7}
	for in, want := range wantAfter {
		if got := s.boundaryAfter(in); got != want {
			t.Errorf("boundaryAfter(%d) = %d, want %d", in, got, want)
		}
	}
	if got := s.boundaryAtOrBefore(5); got != 4 {
		t.Errorf("boundaryAtOrBefore(5) = %d, want 4", got)
	}
}

// Pairs cuts at most 2 slices per slide for a single query — the property
// the technique is named for.
func TestPairsSliceCountBound(t *testing.T) {
	e := NewPairs(func(engine.Result) {}).(*periodicSlicer)
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(70, 30), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 3000; ts++ {
		e.OnWatermark(ts)
		e.OnElement(ts, 1)
	}
	// Live slices cover at most one window range (70) plus the growing
	// slice; with 2 slices per slide the bound is ~2*(70/30)+2.
	if n := len(e.slices); n > 8 {
		t.Fatalf("pairs holds %d slices, want <= 8", n)
	}
}

// Panes slice count is range/gcd per live window span.
func TestPanesSliceCountBound(t *testing.T) {
	e := NewPanes(func(engine.Result) {}).(*periodicSlicer)
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(80, 20), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 2000; ts++ {
		e.OnWatermark(ts)
		e.OnElement(ts, 1)
	}
	if n := len(e.slices); n > 8 { // 80/gcd(80,20)=4 live + growth slack
		t.Fatalf("panes holds %d slices, want <= 8", n)
	}
}

func TestBucketsStoredPartialsTracksOpenWindows(t *testing.T) {
	b := NewBuckets(func(engine.Result) {})
	if _, err := b.AddQuery(engine.Query{Window: window.Sliding(100, 10), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 1000; ts++ {
		b.OnWatermark(ts)
		b.OnElement(ts, 1)
	}
	// ~range/slide = 10 open windows.
	if p := b.StoredPartials(); p < 8 || p > 12 {
		t.Fatalf("buckets partials = %d, want ~10", p)
	}
}

func TestEagerStoredTuplesBounded(t *testing.T) {
	e := NewEager(func(engine.Result) {})
	if _, err := e.AddQuery(engine.Query{Window: window.Sliding(100, 50), Fn: agg.SumF64()}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 5000; ts++ {
		e.OnWatermark(ts)
		e.OnElement(ts, 1)
	}
	// Two overlapping open windows of <=100 tuples each.
	if p := e.StoredPartials(); p > 250 {
		t.Fatalf("eager buffers %d tuples, want <= 250", p)
	}
}
