package window

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// checkpointSpecs enumerates every checkpointable assigner family.
func checkpointSpecs() []Spec {
	return []Spec{
		Tumbling(10),
		Sliding(20, 5),
		Session(7),
		CountTumbling(6),
		CountSliding(8, 4),
		Punctuation(func(v float64) bool { return v < 0 }),
		Delta(5),
		SessionWithMaxDuration(6, 25),
		TimeOrCount(15, 7),
	}
}

// Save/Load equivalence: running events straight through an assigner yields
// the same window extents as running a prefix, snapshotting the assigner,
// loading into a fresh instance, and running the suffix.
func TestAssignerCheckpointEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, spec := range checkpointSpecs() {
		for trial := 0; trial < 5; trial++ {
			n := 80 + rng.Intn(120)
			elems := make([]Element, n)
			var ts int64
			for i := range elems {
				ts += rng.Int63n(6)
				elems[i] = Element{Ts: ts, V: float64(rng.Intn(21) - 10)}
			}
			events := Interleave(elems, math.MaxInt64)
			straight := Drive(spec, events)

			// Split run with snapshot/restore at a random event boundary.
			cut := 1 + rng.Intn(len(events)-1)
			a1 := spec.Factory()
			ctx := &oracleCtx{opens: map[int64]int64{}}
			var pos int64
			feed := func(a Assigner, evs []Event) {
				for _, ev := range evs {
					switch ev.Kind {
					case ElementEvent:
						ctx.boundary = pos
						a.OnElement(ev.Elem.Ts, pos, ev.Elem.V, ctx)
						ctx.ts = append(ctx.ts, ev.Elem.Ts)
						pos++
					case WatermarkEvent:
						ctx.boundary = pos
						a.OnTime(ev.WM, ctx)
					}
				}
			}
			feed(a1, events[:cut])
			ck, ok := a1.(Checkpointable)
			if !ok {
				t.Fatalf("%s: assigner not checkpointable", spec.Name)
			}
			var buf bytes.Buffer
			if err := ck.SaveState(gob.NewEncoder(&buf)); err != nil {
				t.Fatalf("%s: save: %v", spec.Name, err)
			}
			a2 := spec.Factory()
			if err := a2.(Checkpointable).LoadState(gob.NewDecoder(&buf)); err != nil {
				t.Fatalf("%s: load: %v", spec.Name, err)
			}
			feed(a2, events[cut:])
			split := ctx.out

			if len(split) != len(straight) {
				t.Fatalf("%s trial %d (cut %d): %d extents straight, %d split",
					spec.Name, trial, cut, len(straight), len(split))
			}
			for i := range straight {
				if split[i] != straight[i] {
					t.Fatalf("%s trial %d: extent %d = %+v, want %+v",
						spec.Name, trial, i, split[i], straight[i])
				}
			}
		}
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	for _, spec := range checkpointSpecs() {
		a := spec.Factory()
		ck := a.(Checkpointable)
		if err := ck.LoadState(gob.NewDecoder(bytes.NewReader([]byte("not gob")))); err == nil {
			t.Errorf("%s: garbage accepted", spec.Name)
		}
	}
}
