// Command wordcount is the classic demonstration of STREAMLINE's unified
// model: the same pipeline counts words over data at rest (a file) or data
// in motion (a synthetic document stream), selected by a flag — no code
// changes between batch and streaming. Both modes produce a typed
// Stream[string] of words, so the counting stage is shared verbatim.
//
//	wordcount -mode batch -file input.txt
//	wordcount -mode stream -docs 1000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/lang"
	"repro/streamline"
)

func main() {
	mode := flag.String("mode", "batch", "batch | stream")
	file := flag.String("file", "", "input file (batch mode; default: built-in corpus)")
	docs := flag.Int64("docs", 500, "number of generated documents (stream mode)")
	top := flag.Int("top", 10, "how many words to print")
	flag.Parse()

	env := streamline.New()
	var words *streamline.Stream[string]
	switch *mode {
	case "batch":
		text := builtinCorpus()
		if *file != "" {
			data, err := os.ReadFile(*file)
			if err != nil {
				log.Fatalf("read %s: %v", *file, err)
			}
			text = string(data)
		}
		words = streamline.From(env, "file", streamline.Slice(lang.Tokenize(text)))
	case "stream":
		sentences := allSentences()
		feed := streamline.From(env, "docs", streamline.Generator(*docs,
			func(sub, par int, i int64) streamline.Keyed[string] {
				return streamline.Keyed[string]{Ts: i, Value: sentences[i%int64(len(sentences))]}
			}), streamline.WithSourceParallelism(1))
		words = streamline.FlatMap(feed, "tokenize", func(doc string, out streamline.Emitter[string]) {
			for _, w := range lang.Tokenize(doc) {
				out.Emit(w)
			}
		})
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	type count struct {
		word string
		n    int64
	}
	counts := map[string]int64{}
	byWord := streamline.KeyByString(words, "word", func(w string) string { return w })
	streamline.Sink(byWord, "count", func(k streamline.Keyed[string]) {
		counts[k.Value]++
	})
	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	list := make([]count, 0, len(counts))
	for w, n := range counts {
		list = append(list, count{w, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].word < list[j].word
	})
	if len(list) > *top {
		list = list[:*top]
	}
	fmt.Printf("top %d words (%s mode):\n", len(list), *mode)
	for _, c := range list {
		fmt.Printf("  %6d  %s\n", c.n, c.word)
	}
}

func builtinCorpus() string {
	out := ""
	for _, ss := range lang.SampleSentences() {
		for _, s := range ss {
			out += s + "\n"
		}
	}
	return out
}

func allSentences() []string {
	var out []string
	for _, ss := range lang.SampleSentences() {
		out = append(out, ss...)
	}
	sort.Strings(out)
	return out
}
