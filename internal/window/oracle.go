package window

// This file provides the reference evaluator ("oracle") used by conformance
// tests: it drives an Assigner over an explicit event sequence and
// materializes each completed window's element-position extent. Window
// aggregation engines (internal/cutty, internal/baselines) must produce
// exactly the windows the oracle produces, with aggregates equal to folding
// the elements in [FromPos, ToPos).

// Element is one stream element: an event timestamp and a value. Streams fed
// to the window machinery must be in non-decreasing timestamp order (the
// dataflow layer reorders bounded disorder before windowing).
type Element struct {
	Ts int64
	V  float64
}

// EventKind discriminates Event.
type EventKind uint8

const (
	// ElementEvent carries a stream element.
	ElementEvent EventKind = iota
	// WatermarkEvent advances event time.
	WatermarkEvent
)

// Event is one input to a window engine: an element or a watermark.
type Event struct {
	Kind EventKind
	Elem Element // valid when Kind == ElementEvent
	WM   int64   // valid when Kind == WatermarkEvent
}

// Extent is a completed window as the oracle sees it: the logical window
// identity [Start, End) and the half-open element-position range
// [FromPos, ToPos) of its content.
type Extent struct {
	Start   int64
	End     int64
	FromPos int64
	ToPos   int64
}

type oracleCtx struct {
	boundary int64
	ts       []int64 // timestamps of elements processed so far
	opens    map[int64]int64
	out      []Extent
}

func (c *oracleCtx) Open(id int64) { c.opens[id] = c.boundary }

func (c *oracleCtx) CloseHere(id, end int64) {
	from, ok := c.opens[id]
	if !ok {
		// Close without a matching open: ignore, mirroring engine behaviour.
		return
	}
	delete(c.opens, id)
	c.out = append(c.out, Extent{Start: id, End: end, FromPos: from, ToPos: c.boundary})
}

func (c *oracleCtx) CloseAt(id, end, cutoff int64) {
	from, ok := c.opens[id]
	if !ok {
		return
	}
	delete(c.opens, id)
	// Content boundary: first processed element at or after `from` whose
	// timestamp reached the cutoff (in-order stream).
	to := int64(len(c.ts))
	for p := from; p < int64(len(c.ts)); p++ {
		if c.ts[p] >= cutoff {
			to = p
			break
		}
	}
	c.out = append(c.out, Extent{Start: id, End: end, FromPos: from, ToPos: to})
}

// Drive runs the assigner produced by spec over the event sequence and
// returns the completed window extents in completion order.
func Drive(spec Spec, events []Event) []Extent {
	a := spec.Factory()
	ctx := &oracleCtx{opens: map[int64]int64{}}
	var pos int64
	for _, ev := range events {
		switch ev.Kind {
		case ElementEvent:
			ctx.boundary = pos
			a.OnElement(ev.Elem.Ts, pos, ev.Elem.V, ctx)
			ctx.ts = append(ctx.ts, ev.Elem.Ts)
			pos++
		case WatermarkEvent:
			ctx.boundary = pos
			a.OnTime(ev.WM, ctx)
		}
	}
	return ctx.out
}

// Interleave builds an event sequence from elements following the canonical
// engine driving protocol (see package engine): a watermark equal to each
// element's timestamp immediately *before* it — valid for in-order streams,
// and the rule that lets bucket-style engines treat "open" as "accepting" —
// plus a final watermark at finalWM.
func Interleave(elems []Element, finalWM int64) []Event {
	events := make([]Event, 0, 2*len(elems)+1)
	for _, e := range elems {
		events = append(events, Event{Kind: WatermarkEvent, WM: e.Ts})
		events = append(events, Event{Kind: ElementEvent, Elem: e})
	}
	events = append(events, Event{Kind: WatermarkEvent, WM: finalWM})
	return events
}

// Recorder is a Context that records Open and Close calls, for assigner unit
// tests.
type Recorder struct {
	Opens  []int64
	Closes []Extent // FromPos/ToPos unused; Start and End populated
}

// Open implements Context.
func (r *Recorder) Open(id int64) { r.Opens = append(r.Opens, id) }

// CloseHere implements Context.
func (r *Recorder) CloseHere(id, end int64) {
	r.Closes = append(r.Closes, Extent{Start: id, End: end})
}

// CloseAt implements Context.
func (r *Recorder) CloseAt(id, end, cutoff int64) {
	r.Closes = append(r.Closes, Extent{Start: id, End: end})
}
