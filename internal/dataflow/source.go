package dataflow

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"
)

// SourceFunc produces the records of a source subtask. Implementations must
// be replayable for exactly-once recovery: Snapshot captures the read
// position and Restore resumes from it, re-emitting everything after.
//
// A SourceFunc may emit Watermark records interleaved with data; the runtime
// emits the final +inf watermark and end-of-stream marker itself.
type SourceFunc interface {
	// Next returns the next record, or ok=false at end of stream.
	Next() (r Record, ok bool)
	// Snapshot serializes the read position.
	Snapshot() ([]byte, error)
	// Restore resumes from a snapshot taken by Snapshot.
	Restore([]byte) error
}

// GenSource is a deterministic generator source: record i is computed by Gen
// from its index, making the source replayable by construction. A watermark
// lagging the max emitted timestamp by Lag is emitted every WatermarkEvery
// records (default 64).
type GenSource struct {
	// N is the number of records to emit; N < 0 means unbounded.
	N int64
	// Gen computes the i-th record.
	Gen func(i int64) Record
	// WatermarkEvery controls watermark frequency in records (default 64).
	WatermarkEvery int64
	// Lag is subtracted from the max seen timestamp when emitting
	// watermarks — the bounded-disorder allowance.
	Lag int64

	idx       int64
	maxTs     int64
	sinceWM   int64
	havePend  bool
	pendingWM int64
}

type genSourceState struct {
	Idx     int64
	MaxTs   int64
	SinceWM int64
}

// Next implements SourceFunc.
func (g *GenSource) Next() (Record, bool) {
	if g.havePend {
		g.havePend = false
		return Watermark(g.pendingWM), true
	}
	if g.N >= 0 && g.idx >= g.N {
		return Record{}, false
	}
	r := g.Gen(g.idx)
	g.idx++
	if r.Ts > g.maxTs {
		g.maxTs = r.Ts
	}
	every := g.WatermarkEvery
	if every <= 0 {
		every = 64
	}
	g.sinceWM++
	if g.sinceWM >= every {
		g.sinceWM = 0
		g.havePend = true
		g.pendingWM = g.maxTs - g.Lag
	}
	return r, true
}

// Snapshot implements SourceFunc.
func (g *GenSource) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(genSourceState{Idx: g.idx, MaxTs: g.maxTs, SinceWM: g.sinceWM})
	return buf.Bytes(), err
}

// Restore implements SourceFunc.
func (g *GenSource) Restore(blob []byte) error {
	var s genSourceState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("gen source restore: %w", err)
	}
	g.idx, g.maxTs, g.sinceWM, g.havePend = s.Idx, s.MaxTs, s.SinceWM, false
	return nil
}

// SliceSource returns a SourceFactory that splits recs round-robin across
// the source's subtasks. Replayable (backed by GenSource).
func SliceSource(recs []Record) SourceFactory {
	return func(subtask, parallelism int) SourceFunc {
		var mine []Record
		for i := subtask; i < len(recs); i += parallelism {
			mine = append(mine, recs[i])
		}
		return &GenSource{
			N:   int64(len(mine)),
			Gen: func(i int64) Record { return mine[i] },
		}
	}
}

// PacedSource throttles an inner SourceFunc to approximately PerSec records
// per second (wall clock), used by the latency experiments. Pacing sleeps in
// small batches to stay efficient at high rates.
type PacedSource struct {
	Inner  SourceFunc
	PerSec float64

	start time.Time
	count int64
}

// Next implements SourceFunc.
func (p *PacedSource) Next() (Record, bool) {
	if p.start.IsZero() {
		p.start = time.Now()
	}
	if p.PerSec > 0 {
		due := p.start.Add(time.Duration(float64(p.count) / p.PerSec * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	p.count++
	return p.Inner.Next()
}

// Snapshot implements SourceFunc.
func (p *PacedSource) Snapshot() ([]byte, error) { return p.Inner.Snapshot() }

// Restore implements SourceFunc.
func (p *PacedSource) Restore(blob []byte) error { return p.Inner.Restore(blob) }
