package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/streamline"
)

// The keyed benchmark records the vectorized keyed hot path's perf
// trajectory: two keyed pipelines — a windowed aggregation (hash exchange,
// reorder buffer, per-key Cutty engines) and a reduce-by-key with the
// combiner disabled so every record reaches the keyed operator — run with
// WithVectorizedKeyedOps on (run-grouped state access, batch-at-a-time hash
// routing) and off (per-record keyed dispatch, the pre-vectorization
// baseline; the stateless chain fast path stays on in both modes so the
// contrast isolates the keyed half). Throughput and the allocation profile
// per record are the measured win. Results go to BENCH_keyed.json via
// `streamline-bench -keyed`.

// KeyedRun is one (pipeline, mode) measurement.
type KeyedRun struct {
	Pipeline        string  `json:"pipeline"` // "windowed" or "reduce"
	Mode            string  `json:"mode"`     // "vectorized" or "per-record"
	BatchSize       int     `json:"batch_size"`
	Records         int64   `json:"records"`
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// KeyedReport is the suite: both pipelines in both modes plus the
// vectorized-over-baseline speedup and allocation reduction per pipeline.
type KeyedReport struct {
	BatchSize           int        `json:"batch_size"`
	Runs                []KeyedRun `json:"runs"`
	WindowedSpeedup     float64    `json:"windowed_speedup"`
	WindowedAllocReduct float64    `json:"windowed_alloc_reduction"`
	ReduceSpeedup       float64    `json:"reduce_speedup"`
	ReduceAllocReduct   float64    `json:"reduce_alloc_reduction"`
}

// keyedSource builds the shared generator: n keyed float64 records across
// two source subtasks with globally dense, per-subtask strictly increasing
// event times — watermarks every keyedWMEvery records keep downstream
// reorder buffers draining, so the bench exercises the buffer-growth path
// repeatedly rather than accumulating one giant buffer.
func keyedSource(env *streamline.Env, n int64) *streamline.Stream[float64] {
	return streamline.From(env, "nums", streamline.Generator(n,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			global := i*int64(par) + int64(sub)
			return streamline.Keyed[float64]{Ts: global, Key: uint64(global % keyedKeys), Value: float64(global % 9973)}
		}),
		streamline.WithSourceParallelism(1),
		streamline.WithWatermarkEvery(keyedWMEvery))
}

const (
	keyedBatch   = 256
	keyedKeys    = 32
	keyedFanout  = 16
	keyedWMEvery = 64
	keyedWindow  = 4096
)

// KeyedWindowed runs the windowed-wordcount pipeline once: n/keyedFanout
// source "lines" fan out into n keyed word records that hash-shuffle to a
// tumbling-count WindowAggregate (the window counts are the per-word
// counts). The fan-out sits behind a rebalance exchange, in the
// merge chain: the hash hop under measurement is operator-to-operator, the
// words leave the chain in whole runs, and the vectorized mode hash-routes
// them batch at a time. At the window operator the per-record mode pays a
// release-watermark check, a reorder-buffer load and a store per word; the
// vectorized mode pays them once per distinct word per run.
func KeyedWindowed(n int64, batchSize int, vectorized bool) (KeyedRun, error) {
	mode := "vectorized"
	opts := []streamline.Option{
		streamline.WithParallelism(1),
		streamline.WithBatchSize(batchSize),
	}
	if !vectorized {
		mode = "per-record"
		opts = append(opts, streamline.WithVectorizedKeyedOps(false))
	}
	lines := n / keyedFanout
	env := streamline.New(opts...)
	src := keyedSource(env, lines)
	merged := streamline.Union(src, "merge")
	words := streamline.FlatMap(merged, "words", func(line float64, out streamline.Emitter[float64]) {
		base := int64(line) * keyedFanout
		for w := int64(0); w < keyedFanout; w++ {
			out.Emit(float64((base + w) % keyedKeys))
		}
	})
	keyed := streamline.KeyBy(words, "key", func(word float64) uint64 { return uint64(word) })
	wins := streamline.WindowAggregate(keyed, "win", streamline.Query(streamline.Tumbling(keyedWindow), streamline.Count()))
	streamline.Sink(wins, "out", func(streamline.Keyed[streamline.WindowResult]) {})

	start := time.Now()
	mallocs, bytes, err := memDelta(func() error { return env.Execute(context.Background()) })
	if err != nil {
		return KeyedRun{}, fmt.Errorf("keyed windowed %s batch=%d: %w", mode, batchSize, err)
	}
	el := time.Since(start).Seconds()
	return KeyedRun{
		Pipeline: "windowed", Mode: mode, BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
		AllocsPerRecord: float64(mallocs) / float64(n),
		BytesPerRecord:  float64(bytes) / float64(n),
	}, nil
}

// KeyedReduce runs the reduce-by-key pipeline once, with the combiner off so
// the shuffle does not pre-aggregate — every generated record crosses the
// hash exchange and folds into the keyed accumulator cell.
func KeyedReduce(n int64, batchSize int, vectorized bool) (KeyedRun, error) {
	mode := "vectorized"
	opts := []streamline.Option{
		streamline.WithParallelism(1),
		streamline.WithBatchSize(batchSize),
		streamline.WithCombiner(streamline.CombinerOff),
	}
	if !vectorized {
		mode = "per-record"
		opts = append(opts, streamline.WithVectorizedKeyedOps(false))
	}
	env := streamline.New(opts...)
	src := keyedSource(env, n)
	merged := streamline.Union(src, "merge")
	keyed := streamline.KeyByRecord(merged, "key", func(r streamline.Keyed[float64]) uint64 { return r.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	streamline.Sink(sums, "out", func(streamline.Keyed[float64]) {})

	start := time.Now()
	mallocs, bytes, err := memDelta(func() error { return env.Execute(context.Background()) })
	if err != nil {
		return KeyedRun{}, fmt.Errorf("keyed reduce %s batch=%d: %w", mode, batchSize, err)
	}
	el := time.Since(start).Seconds()
	return KeyedRun{
		Pipeline: "reduce", Mode: mode, BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
		AllocsPerRecord: float64(mallocs) / float64(n),
		BytesPerRecord:  float64(bytes) / float64(n),
	}, nil
}

// Keyed workload sizes.
const (
	KeyedRecords      int64 = 2_000_000
	KeyedQuickRecords int64 = 400_000
)

// Keyed runs the keyed-path benchmark suite: both pipelines, both modes, at
// the default batch size.
func Keyed(quick bool) (*KeyedReport, error) {
	n := KeyedRecords
	if quick {
		n = KeyedQuickRecords
	}
	rep := &KeyedReport{BatchSize: keyedBatch}
	wBase, err := KeyedWindowed(n, keyedBatch, false)
	if err != nil {
		return nil, err
	}
	wVec, err := KeyedWindowed(n, keyedBatch, true)
	if err != nil {
		return nil, err
	}
	rBase, err := KeyedReduce(n, keyedBatch, false)
	if err != nil {
		return nil, err
	}
	rVec, err := KeyedReduce(n, keyedBatch, true)
	if err != nil {
		return nil, err
	}
	rep.Runs = []KeyedRun{wBase, wVec, rBase, rVec}
	if wBase.RecordsPerSec > 0 {
		rep.WindowedSpeedup = wVec.RecordsPerSec / wBase.RecordsPerSec
	}
	if wBase.AllocsPerRecord > 0 {
		rep.WindowedAllocReduct = 1 - wVec.AllocsPerRecord/wBase.AllocsPerRecord
	}
	if rBase.RecordsPerSec > 0 {
		rep.ReduceSpeedup = rVec.RecordsPerSec / rBase.RecordsPerSec
	}
	if rBase.AllocsPerRecord > 0 {
		rep.ReduceAllocReduct = 1 - rVec.AllocsPerRecord/rBase.AllocsPerRecord
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *KeyedReport) Table() *Table {
	t := &Table{
		ID:     "KEYED",
		Title:  "vectorized keyed hot path: run-grouped state access vs per-record dispatch",
		Claim:  "touch per-key state once per distinct key per run, not once per record",
		Header: []string{"pipeline", "mode", "batch size", "records", "runtime", "throughput", "allocs/rec", "bytes/rec"},
	}
	for _, run := range r.Runs {
		t.Add(run.Pipeline, run.Mode, fmt.Sprintf("%d", run.BatchSize), fmtCount(float64(run.Records)),
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.RecordsPerSec),
			fmt.Sprintf("%.2f", run.AllocsPerRecord), fmt.Sprintf("%.1f", run.BytesPerRecord))
	}
	t.Note("windowed: %.2fx records/sec, %.0f%% fewer allocs/record; reduce: %.2fx, %.0f%% fewer allocs (batch size %d)",
		r.WindowedSpeedup, r.WindowedAllocReduct*100, r.ReduceSpeedup, r.ReduceAllocReduct*100, r.BatchSize)
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_keyed.json).
func (r *KeyedReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
