package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/streamline"
)

// The fusion benchmark records the vectorized-operator perf trajectory: one
// map/filter-heavy chain — six stateless stages behind a rebalance exchange,
// so every record crosses the batched data plane and then the chain — runs
// with the default execution (typed stage fusion + batch-at-a-time OnBatch)
// and with both disabled (per-record dispatch, one box/unbox pair per stage).
// Throughput and the allocation profile per record are the measured win of
// vectorizing the operator layer. Results go to BENCH_fusion.json via
// `streamline-bench -fusion`.

// FusionRun is one mode's measurement of the fused-chain pipeline.
type FusionRun struct {
	Mode            string  `json:"mode"` // "vectorized" or "per-record"
	BatchSize       int     `json:"batch_size"`
	Records         int64   `json:"records"`
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// FusionReport is the suite: both modes plus the vectorized-over-baseline
// speedup and the fraction of per-record allocations eliminated.
type FusionReport struct {
	BatchSize      int         `json:"batch_size"`
	Runs           []FusionRun `json:"runs"`
	Speedup        float64     `json:"speedup"`
	AllocReduction float64     `json:"alloc_reduction"`
}

// memDelta runs f between two MemStats readings and returns the heap
// allocation deltas (count and bytes). A GC first settles the baseline so
// leftover garbage from pipeline construction is not attributed to f.
func memDelta(f func() error) (mallocs, bytes uint64, err error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := f(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// FusionChain runs the map/filter-heavy pipeline once: n float64 records,
// rebalanced across two subtasks, through map→filter→map→filter→map→map into
// a sink. vectorized toggles both stage fusion and the OnBatch chain driver;
// results are identical either way — only the execution strategy differs.
func FusionChain(n int64, batchSize int, vectorized bool) (FusionRun, error) {
	mode := "vectorized"
	opts := []streamline.Option{
		streamline.WithParallelism(2),
		streamline.WithBatchSize(batchSize),
	}
	if !vectorized {
		mode = "per-record"
		opts = append(opts,
			streamline.WithStageFusion(false),
			streamline.WithVectorizedChains(false),
		)
	}
	env := streamline.New(opts...)
	src := streamline.From(env, "nums", streamline.Generator(n,
		func(sub, par int, i int64) streamline.Keyed[float64] {
			return streamline.Keyed[float64]{Ts: i, Key: uint64(i % 512), Value: float64(i % 9973)}
		}), streamline.WithSourceParallelism(2))
	// The union inserts a rebalance exchange, so the chain under measurement
	// is exchange-fed: the vectorized run exercises OnBatch end to end.
	merged := streamline.Union(src, "merge")
	m1 := streamline.Map(merged, "scale", func(v float64) float64 { return v*1.25 + 3 })
	f1 := streamline.Filter(m1, "band", func(v float64) bool { return v >= 16 })
	m2 := streamline.Map(f1, "shift", func(v float64) float64 { return v - 11 })
	f2 := streamline.Filter(m2, "mod", func(v float64) bool { return int64(v)%7 != 0 })
	m3 := streamline.Map(f2, "widen", func(v float64) float64 { return v*v + 1 })
	m4 := streamline.Map(m3, "final", func(v float64) float64 { return v * 0.5 })
	streamline.Sink(m4, "out", func(streamline.Keyed[float64]) {})

	start := time.Now()
	mallocs, bytes, err := memDelta(func() error { return env.Execute(context.Background()) })
	if err != nil {
		return FusionRun{}, fmt.Errorf("fusion chain %s batch=%d: %w", mode, batchSize, err)
	}
	el := time.Since(start).Seconds()
	return FusionRun{
		Mode: mode, BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
		AllocsPerRecord: float64(mallocs) / float64(n),
		BytesPerRecord:  float64(bytes) / float64(n),
	}, nil
}

// Fusion workload sizes, shared with BenchmarkFusedChain so the CI smoke run
// measures the quick-mode workload recorded in BENCH_fusion.json.
const (
	FusionRecords      int64 = 2_000_000
	FusionQuickRecords int64 = 400_000
)

// Fusion runs the fused-chain benchmark suite: both modes at the default
// batch size.
func Fusion(quick bool) (*FusionReport, error) {
	n := FusionRecords
	if quick {
		n = FusionQuickRecords
	}
	rep := &FusionReport{BatchSize: streamline.DefaultBatchSize}
	base, err := FusionChain(n, streamline.DefaultBatchSize, false)
	if err != nil {
		return nil, err
	}
	fused, err := FusionChain(n, streamline.DefaultBatchSize, true)
	if err != nil {
		return nil, err
	}
	rep.Runs = []FusionRun{base, fused}
	if base.RecordsPerSec > 0 {
		rep.Speedup = fused.RecordsPerSec / base.RecordsPerSec
	}
	if base.AllocsPerRecord > 0 {
		rep.AllocReduction = 1 - fused.AllocsPerRecord/base.AllocsPerRecord
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *FusionReport) Table() *Table {
	t := &Table{
		ID:     "FUSION",
		Title:  "vectorized operator chains: fused OnBatch execution vs per-record boxing",
		Claim:  "one unbox per chain, one box per exit — not one pair per stage",
		Header: []string{"mode", "batch size", "records", "runtime", "throughput", "allocs/rec", "bytes/rec"},
	}
	for _, run := range r.Runs {
		t.Add(run.Mode, fmt.Sprintf("%d", run.BatchSize), fmtCount(float64(run.Records)),
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.RecordsPerSec),
			fmt.Sprintf("%.2f", run.AllocsPerRecord), fmt.Sprintf("%.1f", run.BytesPerRecord))
	}
	t.Note("vectorized: %.2fx records/sec, %.0f%% fewer allocs/record than per-record execution at batch size %d",
		r.Speedup, r.AllocReduction*100, r.BatchSize)
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_fusion.json).
func (r *FusionReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
