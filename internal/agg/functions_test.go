package agg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenericSumIntAndFloat(t *testing.T) {
	if got := FoldAll(Sum[int](), []int{1, 2, 3}); got != 6 {
		t.Fatalf("sum int = %d", got)
	}
	if got := FoldAll(Sum[float64](), []float64{0.5, 0.25}); got != 0.75 {
		t.Fatalf("sum float = %v", got)
	}
	if got := FoldAll(Sum[int](), nil); got != 0 {
		t.Fatalf("empty sum = %d", got)
	}
}

func TestGenericCount(t *testing.T) {
	if got := FoldAll(Count[string](), []string{"a", "b"}); got != 2 {
		t.Fatalf("count = %d", got)
	}
}

func TestGenericMinMax(t *testing.T) {
	xs := []int{5, -2, 9}
	if got := FoldAll(Min[int](), xs); got != -2 {
		t.Fatalf("min = %d", got)
	}
	if got := FoldAll(Max[int](), xs); got != 9 {
		t.Fatalf("max = %d", got)
	}
	// Empty lowers to zero value, not a sentinel.
	if got := FoldAll(Min[int](), nil); got != 0 {
		t.Fatalf("empty min = %d", got)
	}
}

func TestMean(t *testing.T) {
	if got := FoldAll(Mean(), []float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := FoldAll(Mean(), nil); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

func TestTopK(t *testing.T) {
	in := []string{"a", "b", "a", "c", "a", "b"}
	got := FoldAll(TopK(2), in)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Key != "a" || got[0].Count != 3 {
		t.Fatalf("top1 = %+v, want a:3", got[0])
	}
	if got[1].Key != "b" || got[1].Count != 2 {
		t.Fatalf("top2 = %+v, want b:2", got[1])
	}
}

func TestTopKTieBreakDeterministic(t *testing.T) {
	in := []string{"x", "y"}
	a := FoldAll(TopK(1), in)
	b := FoldAll(TopK(1), in)
	if a[0] != b[0] || a[0].Key != "x" {
		t.Fatalf("tie break not deterministic: %v vs %v", a, b)
	}
}

// Property: TopK combine is associative in its lowered result.
func TestTopKAssociative(t *testing.T) {
	fn := TopK(3)
	f := func(keys []uint8, split uint8) bool {
		if len(keys) < 3 {
			return true
		}
		strs := make([]string, len(keys))
		for i, k := range keys {
			strs[i] = string(rune('a' + k%5))
		}
		i := 1 + int(split)%(len(strs)-2)
		j := i + 1
		lift := func(ss []string) TopKAcc {
			acc := fn.CreateAccumulator()
			for _, s := range ss {
				acc = fn.Combine(acc, fn.Lift(s))
			}
			return acc
		}
		a, b, c := lift(strs[:i]), lift(strs[i:j]), lift(strs[j:])
		l := fn.Lower(fn.Combine(fn.Combine(a, b), c))
		r := fn.Lower(fn.Combine(a, fn.Combine(b, c)))
		if len(l) != len(r) {
			return false
		}
		for k := range l {
			if l[k] != r[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReservoirSizeBound(t *testing.T) {
	fn := Reservoir(5, 42)
	acc := fn.CreateAccumulator()
	for i := 0; i < 100; i++ {
		acc = fn.Combine(acc, fn.Lift(float64(i)))
	}
	out := fn.Lower(acc)
	if len(out) > 5 {
		t.Fatalf("reservoir exceeded k: %d", len(out))
	}
	if len(out) == 0 {
		t.Fatalf("reservoir empty after 100 inserts")
	}
	for _, v := range out {
		if v < 0 || v > 99 {
			t.Fatalf("sample value %v outside input domain", v)
		}
	}
}

func TestReservoirSmallInputKeepsAll(t *testing.T) {
	fn := Reservoir(10, 7)
	acc := fn.CreateAccumulator()
	for i := 0; i < 3; i++ {
		acc = fn.Combine(acc, fn.Lift(float64(i)))
	}
	if got := fn.Lower(acc); len(got) != 3 {
		t.Fatalf("should keep all 3 when under capacity, got %d", len(got))
	}
}

// Property: generic Min/Max match math.Min/Max folds.
func TestGenericMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for i, v := range xs {
			if math.IsNaN(v) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi := xs[0], xs[0]
		for _, v := range xs[1:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return FoldAll(Min[float64](), xs) == lo && FoldAll(Max[float64](), xs) == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
