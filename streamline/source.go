package streamline

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/dataflow"
)

// ReadStatus is what a Reader's Next call reports about its input — the
// typed rendering of Flink's InputStatus. Data-at-rest readers only ever
// return ReadData and ReadEnd; live (in-motion) readers additionally use
// ReadIdle so the runtime stays responsive while the input is quiet, and
// composite readers use ReadWatermark to steer event time explicitly.
type ReadStatus uint8

const (
	// ReadData means the returned element is valid.
	ReadData ReadStatus = iota
	// ReadWatermark means the returned element's Ts carries an event-time
	// watermark: a promise that no later element of this subtask has a
	// smaller timestamp.
	ReadWatermark
	// ReadIdle means no element is available right now; the runtime emits
	// the current watermark and polls again. Readers should wait briefly
	// before returning ReadIdle rather than spinning.
	ReadIdle
	// ReadEnd means the input is exhausted (bounded sources).
	ReadEnd
)

// Reader produces the elements of one source subtask. Implementations
// should be replayable for exactly-once recovery: Snapshot captures the
// read position, Restore resumes from it, re-emitting everything after.
// Sources that cannot replay (live channels) snapshot their bookkeeping and
// document the weaker guarantee.
//
// A Reader whose input can fail mid-stream (files, networks) may
// additionally implement `Err() error`; the runtime checks it at end of
// stream and fails the job with the reported error.
type Reader[T any] interface {
	// Next returns the next element and its status. The element is only
	// meaningful for ReadData (a record) and ReadWatermark (Ts is the
	// watermark).
	Next() (Keyed[T], ReadStatus)
	// Snapshot serializes the read position.
	Snapshot() ([]byte, error)
	// Restore resumes from a snapshot taken by Snapshot.
	Restore([]byte) error
}

// Source is a typed, pluggable connector: a factory of per-subtask Readers.
// Built-in connectors cover slices (Slice, KeyedSlice), deterministic
// generators (Generator, Paced), live channels (Channel), files at rest
// (JSONL, CSV), and the at-rest→in-motion handoff (Hybrid); custom
// connectors implement this interface directly and plug into the same From
// entry point, options and checkpointing machinery.
type Source[T any] interface {
	// Open builds the reader feeding one subtask of the source stage.
	Open(subtask, parallelism int) Reader[T]
}

// ParallelismHinter is an optional Source extension for connectors that
// only behave correctly at a particular parallelism. From honors the hint
// whenever no WithSourceParallelism option is given; the option always
// wins. Channel hints 1 (subtasks would split the shared channel, and an
// idle subtask would pin downstream event time at -inf); decorating
// connectors (Paced, Hybrid) delegate to their inner sources.
type ParallelismHinter interface {
	// PreferredParallelism returns the parallelism the source stage should
	// default to; <= 0 means no preference.
	PreferredParallelism() int
}

// sourceConfig is the resolved set of source options.
type sourceConfig struct {
	parallelism int
	parSet      bool // WithSourceParallelism was given (even as zero)
	lag         int64
	wmEvery     int64
	ts          any // func(T) int64, asserted by From against the stream type
}

// SourceOption configures a source stage built by From.
type SourceOption interface{ applySource(*sourceConfig) }

type sourceOptionFunc func(*sourceConfig)

func (f sourceOptionFunc) applySource(c *sourceConfig) { f(c) }

// WithSourceParallelism sets the number of subtasks of the source stage.
// Zero or negative uses the environment default. Giving the option in any
// form overrides the connector's ParallelismHinter hint.
func WithSourceParallelism(p int) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.parallelism, c.parSet = p, true })
}

// WithWatermarkLag sets the bounded-disorder allowance: watermarks trail the
// max seen event timestamp by lag ticks (default 0).
func WithWatermarkLag(lag int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.lag = lag })
}

// WithWatermarkEvery sets the watermark cadence: one watermark per `every`
// records per subtask (default 64).
func WithWatermarkEvery(every int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.wmEvery = every })
}

// WithTimestamps installs an event-timestamp extractor: every element the
// source produces is re-stamped with f(value) before entering the pipeline.
// The extractor's input type must equal the stream's element type.
func WithTimestamps[T any](f func(T) int64) SourceOption {
	return sourceOptionFunc(func(c *sourceConfig) { c.ts = f })
}

// From creates a stream reading from a source connector — the single entry
// point of the connector API. Whether src is data at rest (Slice, JSONL,
// CSV), data in motion (Channel, Paced), or a Hybrid of both, the identical
// plan runs on the identical engine. Options control the stage's
// parallelism, watermark cadence and lag, and timestamp extraction.
func From[T any](env *Env, name string, src Source[T], opts ...SourceOption) *Stream[T] {
	cfg := sourceConfig{wmEvery: 64}
	for _, o := range opts {
		o.applySource(&cfg)
	}
	if !cfg.parSet {
		cfg.parallelism = preferredParallelism(src)
	}
	var ts func(T) int64
	if cfg.ts != nil {
		f, ok := cfg.ts.(func(T) int64)
		if !ok {
			env.core.Fail(fmt.Errorf("streamline: From %q: WithTimestamps extractor is %T, want func(%s) int64",
				name, cfg.ts, typeName[T]()))
			return &Stream[T]{env: env, inner: env.core.FromSource(name, cfg.parallelism, emptySourceFactory)}
		}
		ts = f
	}
	factory := func(sub, par int) dataflow.SourceFunc {
		return &loweredReader[T]{
			r:       src.Open(sub, par),
			ts:      ts,
			every:   cfg.wmEvery,
			lag:     cfg.lag,
			wmFloor: minInt64,
		}
	}
	return &Stream[T]{env: env, inner: env.core.FromSource(name, cfg.parallelism, factory)}
}

// preferredParallelism reads a source's parallelism hint, if it carries one.
func preferredParallelism[T any](src Source[T]) int {
	if h, ok := src.(ParallelismHinter); ok {
		return h.PreferredParallelism()
	}
	return 0
}

// typeName renders T for error messages.
func typeName[T any]() string {
	var zero T
	return fmt.Sprintf("%T", zero)
}

// emptySourceFactory keeps a failed From structurally valid; the build
// error recorded on the environment wins before anything runs.
func emptySourceFactory(sub, par int) dataflow.SourceFunc {
	return &dataflow.GenSource{N: 0, Gen: func(int64) dataflow.Record { return dataflow.Record{} }}
}

// loweredReader adapts a typed Reader to the engine's SourceFunc: it boxes
// elements, applies the timestamp extractor, and generates cadence
// watermarks (one per `every` records, trailing the max seen timestamp by
// `lag`), mirroring GenSource's watermarking so connector-built sources
// behave exactly like the legacy constructors.
type loweredReader[T any] struct {
	r     Reader[T]
	ts    func(T) int64
	every int64
	lag   int64

	maxTs     int64
	haveTs    bool
	sinceWM   int64
	havePend  bool
	pendingWM int64
	wmFloor   int64 // max watermark emitted on the wire; never regress
}

type loweredReaderState struct {
	MaxTs   int64
	HaveTs  bool
	SinceWM int64
	WMFloor int64
	Inner   []byte
}

const minInt64 = -1 << 63

// watermark returns the adapter's current watermark value.
func (l *loweredReader[T]) watermark() int64 {
	if !l.haveTs {
		return minInt64
	}
	return l.maxTs - l.lag
}

// emitWM stamps a watermark on the wire, clamped so the source's event
// time never regresses.
func (l *loweredReader[T]) emitWM(v int64) (dataflow.Record, bool) {
	if v > l.wmFloor {
		l.wmFloor = v
	}
	return dataflow.Watermark(l.wmFloor), true
}

// Next implements dataflow.SourceFunc.
func (l *loweredReader[T]) Next() (dataflow.Record, bool) {
	if l.havePend {
		l.havePend = false
		return l.emitWM(l.pendingWM)
	}
	k, st := l.r.Next()
	switch st {
	case ReadEnd:
		return dataflow.Record{}, false
	case ReadIdle:
		// Keep the runtime loop moving and event time visible while the
		// input is quiet.
		return l.emitWM(l.watermark())
	case ReadWatermark:
		// Reader-steered watermark (hybrid handoff, custom connectors): an
		// explicit promise that the reader's input is complete up to here.
		// The reader computes it from its own pre-extraction clock, so
		// when a WithTimestamps extractor is installed also close out
		// everything already emitted in extracted event time — the hybrid
		// handoff must cover the whole history either way.
		wm := k.Ts
		if l.haveTs && l.maxTs > wm {
			wm = l.maxTs
		}
		if k.Ts > l.maxTs || !l.haveTs {
			l.maxTs, l.haveTs = k.Ts, true
		}
		return l.emitWM(wm)
	}
	if l.ts != nil {
		k.Ts = l.ts(k.Value)
	}
	if k.Ts > l.maxTs || !l.haveTs {
		l.maxTs, l.haveTs = k.Ts, true
	}
	every := l.every
	if every <= 0 {
		every = 64
	}
	l.sinceWM++
	if l.sinceWM >= every {
		l.sinceWM = 0
		l.havePend = true
		l.pendingWM = l.watermark()
	}
	return box(k), true
}

// Snapshot implements dataflow.SourceFunc.
func (l *loweredReader[T]) Snapshot() ([]byte, error) {
	inner, err := l.r.Snapshot()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = gob.NewEncoder(&buf).Encode(loweredReaderState{
		MaxTs: l.maxTs, HaveTs: l.haveTs, SinceWM: l.sinceWM, WMFloor: l.wmFloor, Inner: inner,
	})
	return buf.Bytes(), err
}

// Restore implements dataflow.SourceFunc. A pending cadence watermark is
// dropped, like GenSource's.
func (l *loweredReader[T]) Restore(blob []byte) error {
	var s loweredReaderState
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return fmt.Errorf("source restore: %w", err)
	}
	if err := l.r.Restore(s.Inner); err != nil {
		return err
	}
	l.maxTs, l.haveTs, l.sinceWM, l.wmFloor, l.havePend = s.MaxTs, s.HaveTs, s.SinceWM, s.WMFloor, false
	return nil
}

// Err implements dataflow.Failable by delegating to the reader, if it
// reports errors.
func (l *loweredReader[T]) Err() error {
	if f, ok := l.r.(interface{ Err() error }); ok {
		return f.Err()
	}
	return nil
}
