package transport

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/state"
)

// customPayload stands in for a user-defined record payload registered via
// RegisterTypes' variadic extras.
type customPayload struct {
	Name  string
	Score float64
}

// TestFrameRoundTrip pushes every record kind a data-plane connection
// carries through one persistent gob encoder/decoder pair — the exact wiring
// a Mesh connection uses — and requires bit-identical frames on the far
// side, in order. Interface payloads (WindowResult, JoinedPair, custom
// structs) exercise the RegisterTypes contract.
func TestFrameRoundTrip(t *testing.T) {
	RegisterTypes(customPayload{})

	ref := dataflow.ChannelRef{Node: 7, Edge: 1, To: 2, From: 3}
	frames := []frame{
		{Ref: ref, Recs: wireBatch{recs: []dataflow.Record{
			dataflow.Data(101, 4, "hello"),
			dataflow.Data(102, 4, 3.5),
			dataflow.Data(103, 5, int64(42)),
		}}},
		{Ref: ref, Recs: wireBatch{recs: []dataflow.Record{
			dataflow.Data(104, 6, dataflow.WindowResult{QueryID: 2, Start: 100, End: 200, Value: 9.5, Count: 3}),
			dataflow.Data(105, 6, dataflow.JoinedPair{WindowStart: 100, WindowEnd: 200, Left: 1, Right: 2}),
			dataflow.Data(106, 7, customPayload{Name: "x", Score: 0.25}),
		}}},
		{Ref: ref, Recs: wireBatch{recs: []dataflow.Record{dataflow.Watermark(150)}}},
		{Ref: ref, Recs: wireBatch{recs: []dataflow.Record{dataflow.Barrier(9)}}},
		{Ref: ref, Recs: wireBatch{recs: []dataflow.Record{dataflow.End()}}},
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, f := range frames {
		if err := enc.Encode(f); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}

	dec := gob.NewDecoder(&buf)
	for i, want := range frames {
		// Fresh frame per message, as Mesh.readLoop does: gob reuses slice
		// backing arrays of the destination otherwise.
		var got frame
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over after decoding all frames", buf.Len())
	}
}

// TestControlRoundTrip round-trips the control protocol's richest message —
// a plan carrying a restore snapshot — plus an ack with keyed-state groups.
func TestControlRoundTrip(t *testing.T) {
	snap := state.NewSnapshot(4)
	snap.NumKeyGroups = 16
	snap.Put(state.SubtaskKey{OperatorID: 3, Subtask: 1}, []byte("src-cursor"))
	snap.PutGroup(state.GroupKey{OperatorID: 5, KeyGroup: 9}, []byte("kg9"))

	msgs := []ctrlMsg{
		{Kind: ctrlHello, Addr: "127.0.0.1:4242"},
		{Kind: ctrlPlan, Plan: &planMsg{
			Self: 2, Workers: 3,
			Spec: core.PlanSpec{Name: "wordcount", BatchSize: 64, Nodes: []core.NodeSpec{
				{ID: 1, Name: "src", Parallelism: 2, Source: true},
				{ID: 2, Name: "sink", Parallelism: 1, Pinned: true, In: []core.EdgeSpec{{From: 1, Part: 2}}},
			}},
			Fingerprint: "abc123",
			Placement:   dataflow.Placement{1: {1, 2}, 2: {0}},
			DataAddrs:   map[int]string{0: "127.0.0.1:1", 1: "127.0.0.1:2"},
			Restore:     snap,
			Pipeline:    "wordcount",
			Args:        []string{"-n", "10"},
		}},
		{Kind: ctrlTrigger, Ckpt: 12},
		{Kind: ctrlAck, Ack: &dataflow.Ack{
			Ckpt: 12,
			Key:  state.SubtaskKey{OperatorID: 5, Subtask: 0},
			Blob: []byte("blob"),
			Groups: map[int][]byte{
				3: []byte("g3"),
				7: []byte("g7"),
			},
		}},
		{Kind: ctrlDone, Err: "worker lost"},
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, m := range msgs {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	dec := gob.NewDecoder(&buf)
	for i, want := range msgs {
		var got ctrlMsg
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode msg %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d = %+v, want %+v", i, got, want)
		}
	}
}
