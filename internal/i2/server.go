package i2

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// Server is the I2 interactive development environment's coordination
// layer: it mediates between the running cluster application (which feeds
// the Store through Ingest) and any number of interactive front ends, which
//
//	GET  /series?from=&to=&width=   — one-shot viewport query (zoom/pan),
//	POST /view                      — register/update a live viewport,
//	GET  /stream?id=                — server-sent events with each completed
//	                                  pixel column of the registered view,
//	GET  /stats                     — store and view diagnostics.
//
// Every response carries M4-reduced data only, so the transfer volume to
// the front end is bounded by the viewport width — never by the data rate.
type Server struct {
	store *Store

	mu     sync.Mutex
	views  map[int]*liveView
	nextID int
}

// liveView is one registered live viewport: an adaptive view feeding a
// buffered column channel drained by the SSE handler. The viewport can be
// switched while streaming (PUT /view) — zoom/pan backfills from history
// and continues live.
type liveView struct {
	view *AdaptiveView
	cols chan Column
}

// NewServer returns a server over the given store.
func NewServer(store *Store) *Server {
	return &Server{store: store, views: make(map[int]*liveView)}
}

// Ingest absorbs one in-order live sample: it lands in the history store
// and advances every registered live view.
func (s *Server) Ingest(p Point) {
	s.store.Append(p)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.views {
		v.view.OnPoint(p)
	}
}

// RegisterView registers a live viewport and returns its id.
func (s *Server) RegisterView(vp Viewport) (int, error) {
	if !vp.Valid() {
		return 0, fmt.Errorf("i2: invalid viewport %+v", vp)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &liveView{cols: make(chan Column, 4*vp.Width+16)}
	view, err := NewAdaptiveView(s.store, vp, func(c Column) {
		select {
		case v.cols <- c:
		default: // slow consumer: drop the newest column
		}
	})
	if err != nil {
		return 0, err
	}
	v.view = view
	id := s.nextID
	s.nextID++
	s.views[id] = v
	return id, nil
}

// UpdateView switches a registered view's viewport (zoom/pan): completed
// columns of the new viewport stream out immediately from history, the rest
// continues live.
func (s *Server) UpdateView(id int, vp Viewport) error {
	s.mu.Lock()
	v, ok := s.views[id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("i2: unknown view %d", id)
	}
	return v.view.SetViewport(vp)
}

// DropView removes a live viewport.
func (s *Server) DropView(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[id]; ok {
		close(v.cols)
		delete(s.views, id)
	}
}

// Handler returns the HTTP handler exposing the I2 protocol.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /series", s.handleSeries)
	mux.HandleFunc("POST /view", s.handleView)
	mux.HandleFunc("PUT /view", s.handleViewUpdate)
	mux.HandleFunc("GET /stream", s.handleStream)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *Server) handleViewUpdate(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "missing or invalid id", http.StatusBadRequest)
		return
	}
	var vp Viewport
	if err := json.NewDecoder(r.Body).Decode(&vp); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.UpdateView(id, vp); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	vp, err := parseViewport(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cols := s.store.Query(vp)
	w.Header().Set("Content-Type", "application/json")
	resp := struct {
		Viewport Viewport `json:"viewport"`
		Columns  []Column `json:"columns"`
		Points   []Point  `json:"points"`
	}{vp, cols, Points(cols)}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	var vp Viewport
	if err := json.NewDecoder(r.Body).Decode(&vp); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id, err := s.RegisterView(vp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"id":%d}`+"\n", id)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "missing or invalid id", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	v, ok := s.views[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown view", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// Flush headers plus a hello event immediately: SSE clients block on
	// the response header until the first byte arrives.
	vpData, _ := json.Marshal(v.view.Viewport())
	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", vpData)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case c, open := <-v.cols:
			if !open {
				return
			}
			data, err := json.Marshal(c)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: column\ndata: %s\n\n", data)
			fl.Flush()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	nViews := len(s.views)
	s.mu.Unlock()
	first, last := s.store.Span()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"points":%d,"first":%d,"last":%d,"views":%d}`+"\n",
		s.store.Len(), first, last, nViews)
}

func parseViewport(r *http.Request) (Viewport, error) {
	q := r.URL.Query()
	from, err1 := strconv.ParseInt(q.Get("from"), 10, 64)
	to, err2 := strconv.ParseInt(q.Get("to"), 10, 64)
	width, err3 := strconv.Atoi(q.Get("width"))
	if err1 != nil || err2 != nil || err3 != nil {
		return Viewport{}, fmt.Errorf("i2: from, to and width are required integers")
	}
	vp := Viewport{From: from, To: to, Width: width}
	if !vp.Valid() {
		return Viewport{}, fmt.Errorf("i2: invalid viewport (need to > from, width > 0)")
	}
	return vp, nil
}
