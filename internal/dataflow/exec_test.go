package dataflow

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/window"
)

// run executes a graph to completion with a timeout guard.
func run(t *testing.T, g *Graph, opts ...JobOption) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := NewJob(g, opts...).Run(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}
}

func intRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Data(int64(i), uint64(i%7), float64(i))
	}
	return recs
}

func TestLinearPipeline(t *testing.T) {
	g := NewGraph("linear")
	src := g.AddSource("src", 1, SliceSource(intRecords(100)))
	double := g.AddOperator("double", 1, func() Operator {
		return &MapOp{F: func(r Record) Record {
			r.Value = r.Value.(float64) * 2
			return r
		}}
	}, Edge{From: src, Part: Forward})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: double, Part: Forward})
	run(t, g)

	recs := sink.Records()
	if len(recs) != 100 {
		t.Fatalf("sink saw %d records, want 100", len(recs))
	}
	var sum float64
	for _, r := range recs {
		sum += r.Value.(float64)
	}
	if want := float64(99*100) / 2 * 2; sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
}

func TestFilterAndFlatMap(t *testing.T) {
	g := NewGraph("fl")
	src := g.AddSource("src", 1, SliceSource(intRecords(50)))
	even := g.AddOperator("even", 1, func() Operator {
		return &FilterOp{F: func(r Record) bool { return int64(r.Value.(float64))%2 == 0 }}
	}, Edge{From: src, Part: Forward})
	dup := g.AddOperator("dup", 1, func() Operator {
		return &FlatMapOp{F: func(r Record, out Collector) {
			out.Collect(r)
			out.Collect(r)
		}}
	}, Edge{From: even, Part: Forward})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: dup, Part: Forward})
	run(t, g)
	if got := len(sink.Records()); got != 50 { // 25 evens duplicated
		t.Fatalf("got %d records, want 50", got)
	}
}

func TestHashPartitioningRoutesByKey(t *testing.T) {
	g := NewGraph("hash")
	src := g.AddSource("src", 2, SliceSource(intRecords(200)))
	seen := make([]map[uint64]bool, 2)
	for i := range seen {
		seen[i] = map[uint64]bool{}
	}
	tag := g.AddOperator("tag", 2, func() Operator {
		op := &FlatMapOp{}
		sub := -1
		op.F = func(r Record, out Collector) {
			out.Collect(r)
			seen[sub][r.Key] = true
		}
		// Capture subtask at Open via a wrapper.
		return &openWrap{inner: op, onOpen: func(ctx *OpContext) { sub = ctx.Subtask }}
	}, Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: tag, Part: Rebalance})
	run(t, g)
	if len(sink.Records()) != 200 {
		t.Fatalf("lost records: %d", len(sink.Records()))
	}
	// No key may appear in both subtasks.
	for k := range seen[0] {
		if seen[1][k] {
			t.Fatalf("key %d seen on both subtasks", k)
		}
	}
}

// openWrap decorates an operator with an Open hook (test helper).
type openWrap struct {
	inner  Operator
	onOpen func(*OpContext)
}

func (o *openWrap) Open(ctx *OpContext) error {
	o.onOpen(ctx)
	return o.inner.Open(ctx)
}
func (o *openWrap) OnRecord(r Record, out Collector)    { o.inner.OnRecord(r, out) }
func (o *openWrap) OnWatermark(wm int64, out Collector) { o.inner.OnWatermark(wm, out) }
func (o *openWrap) Snapshot() ([]byte, error)           { return o.inner.Snapshot() }
func (o *openWrap) Finish(out Collector)                { o.inner.Finish(out) }

func TestKeyedReduceBatchMode(t *testing.T) {
	g := NewGraph("reduce")
	src := g.AddSource("src", 2, SliceSource(intRecords(100)))
	red := g.AddOperator("sum", 2, func() Operator {
		return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
	}, Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
	run(t, g)

	got := map[uint64]float64{}
	for _, r := range sink.Records() {
		got[r.Key] = r.Value.(float64)
	}
	want := map[uint64]float64{}
	for i := 0; i < 100; i++ {
		want[uint64(i%7)] += float64(i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("key %d = %v, want %v", k, got[k], w)
		}
	}
}

func TestWatermarksReachSink(t *testing.T) {
	g := NewGraph("wm")
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &GenSource{N: 100, WatermarkEvery: 10, Gen: func(i int64) Record {
			return Data(i, 0, float64(i))
		}}
	})
	var wms []int64
	g.AddOperator("sink", 1, func() Operator {
		return &FuncSink{F: func(Record) {}, OnWM: func(wm int64) { wms = append(wms, wm) }}
	}, Edge{From: src, Part: Forward})
	run(t, g)
	if len(wms) == 0 {
		t.Fatalf("no watermarks observed")
	}
	for i := 1; i < len(wms); i++ {
		if wms[i] < wms[i-1] {
			t.Fatalf("watermarks regressed: %v", wms)
		}
	}
	if wms[len(wms)-1] != math.MaxInt64 {
		t.Fatalf("final watermark = %d, want +inf", wms[len(wms)-1])
	}
}

func TestWindowPipelineEndToEnd(t *testing.T) {
	// Two source subtasks emit interleaved keyed values; tumbling(10) sum
	// per key must match an exact computation.
	const n = 400
	g := NewGraph("windows")
	src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
		return &GenSource{N: n / 2, WatermarkEvery: 8, Lag: 0, Gen: func(i int64) Record {
			global := i*int64(par) + int64(sub)
			return Data(global, uint64(global%3), float64(1))
		}}
	})
	win := g.AddOperator("win", 2, NewWindowOp(
		WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()},
	), Edge{From: src, Part: HashPartition})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: win, Part: Rebalance})
	run(t, g)

	type wkey struct {
		key   uint64
		start int64
	}
	got := map[wkey]float64{}
	for _, r := range sink.Records() {
		wr := r.Value.(WindowResult)
		got[wkey{r.Key, wr.Start}] += wr.Value
	}
	want := map[wkey]float64{}
	for ts := int64(0); ts < n; ts++ {
		want[wkey{uint64(ts % 3), (ts / 10) * 10}]++
	}
	if len(got) != len(want) {
		t.Fatalf("got %d windows, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("window %+v = %v, want %v", k, got[k], w)
		}
	}
}

func TestChainingEquivalence(t *testing.T) {
	build := func() (*Graph, *CollectSink) {
		g := NewGraph("chain")
		src := g.AddSource("src", 1, SliceSource(intRecords(300)))
		a := g.AddOperator("a", 1, func() Operator {
			return &MapOp{F: func(r Record) Record { r.Value = r.Value.(float64) + 1; return r }}
		}, Edge{From: src, Part: Forward})
		b := g.AddOperator("b", 1, func() Operator {
			return &FilterOp{F: func(r Record) bool { return int64(r.Value.(float64))%3 != 0 }}
		}, Edge{From: a, Part: Forward})
		sink := &CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: b, Part: Forward})
		return g, sink
	}
	sum := func(s *CollectSink) (float64, int) {
		var total float64
		for _, r := range s.Records() {
			total += r.Value.(float64)
		}
		return total, len(s.Records())
	}
	g1, s1 := build()
	run(t, g1, WithChaining(true))
	g2, s2 := build()
	run(t, g2, WithChaining(false))
	t1, n1 := sum(s1)
	t2, n2 := sum(s2)
	if t1 != t2 || n1 != n2 {
		t.Fatalf("chained (%v, %d) != unchained (%v, %d)", t1, n1, t2, n2)
	}
}

func TestGraphValidation(t *testing.T) {
	cases := map[string]func() *Graph{
		"no-op-no-source": func() *Graph {
			g := NewGraph("bad")
			g.nodes = append(g.nodes, &Node{ID: 0, Name: "ghost", Parallelism: 1})
			return g
		},
		"operator-without-input": func() *Graph {
			g := NewGraph("bad")
			g.AddOperator("orphan", 1, func() Operator { return &MapOp{F: func(r Record) Record { return r }} })
			return g
		},
		"forward-parallelism-mismatch": func() *Graph {
			g := NewGraph("bad")
			s := g.AddSource("s", 2, SliceSource(nil))
			g.AddOperator("op", 3, func() Operator { return &MapOp{F: func(r Record) Record { return r }} },
				Edge{From: s, Part: Forward})
			return g
		},
		"zero-parallelism": func() *Graph {
			g := NewGraph("bad")
			g.AddSource("s", 0, SliceSource(nil))
			return g
		},
	}
	for name, mk := range cases {
		if err := mk().Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

func TestCancellationStopsUnboundedJob(t *testing.T) {
	g := NewGraph("unbounded")
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &GenSource{N: -1, Gen: func(i int64) Record { return Data(i, 0, float64(i)) }}
	})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: src, Part: Forward})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := NewJob(g).Run(ctx)
	if err == nil {
		t.Fatalf("unbounded job finished without error?")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation took too long")
	}
	if len(sink.Records()) == 0 {
		t.Fatalf("no records processed before cancel")
	}
}

func TestUnionTwoSources(t *testing.T) {
	g := NewGraph("union")
	a := g.AddSource("a", 1, SliceSource(intRecords(50)))
	b := g.AddSource("b", 1, SliceSource(intRecords(70)))
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(),
		Edge{From: a, Part: Rebalance}, Edge{From: b, Part: Rebalance})
	run(t, g)
	if got := len(sink.Records()); got != 120 {
		t.Fatalf("union saw %d records, want 120", got)
	}
}

func TestRecordKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindData: "data", KindWatermark: "watermark", KindBarrier: "barrier", KindEnd: "end",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Partitioning(99).String() == "" || Kind(99).String() == "" {
		t.Errorf("unknown values must still render")
	}
}

func TestBroadcastPartitioning(t *testing.T) {
	g := NewGraph("bcast")
	src := g.AddSource("src", 1, SliceSource(intRecords(10)))
	sink := &CollectSink{}
	g.AddOperator("sink", 3, sink.Factory(), Edge{From: src, Part: BroadcastPartition})
	run(t, g)
	if got := len(sink.Records()); got != 30 {
		t.Fatalf("broadcast delivered %d records, want 30", got)
	}
}

// sortRecordsByTs is a shared helper for deterministic comparisons.
func sortRecordsByTs(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Ts != recs[j].Ts {
			return recs[i].Ts < recs[j].Ts
		}
		return fmt.Sprint(recs[i].Value) < fmt.Sprint(recs[j].Value)
	})
}
