package dataflow

import (
	"fmt"
	"sort"
	"testing"
)

// fakeSplitInput is an in-memory fixed-split input: a set of named
// "files", each a run of fixed-size records. Record i of a file occupies
// bytes [i*recBytes, (i+1)*recBytes), so alignment is exact arithmetic, and
// the reader's resume coordinate is the record index within the file.
type fakeSplitInput struct {
	recBytes int64
	files    []fakeFile
}

type fakeFile struct {
	path string
	recs int64
}

func (in *fakeSplitInput) fixedSplits(chunk int64) func() ([]Split, error) {
	return func() ([]Split, error) {
		var splits []Split
		for _, f := range in.files {
			splits = TileSplits(splits, f.path, f.recs*in.recBytes, chunk)
		}
		return splits, nil
	}
}

func (in *fakeSplitInput) lookup(path string) (fakeFile, error) {
	for _, f := range in.files {
		if f.path == path {
			return f, nil
		}
	}
	return fakeFile{}, fmt.Errorf("no such input %q", path)
}

// fakeSplitReader implements SplitReader over a fakeSplitInput. Records are
// emitted with Ts = their index within the file and the path in Value, so
// tests can assert exactly-once per (path, index).
type fakeSplitReader struct {
	in   *fakeSplitInput
	file fakeFile
	sp   Split
	idx  int64 // next record index
	read int64 // bytes consumed since last Bytes()
}

func (r *fakeSplitReader) OpenSplit(sp Split, resumeAt int64) error {
	f, err := r.in.lookup(sp.Path)
	if err != nil {
		return err
	}
	r.file, r.sp = f, sp
	if resumeAt >= 0 {
		r.idx = resumeAt
	} else {
		// First record *starting* at or after Start.
		r.idx = (sp.Start + r.in.recBytes - 1) / r.in.recBytes
	}
	return nil
}

func (r *fakeSplitReader) NextInSplit() (Record, bool, error) {
	start := r.idx * r.in.recBytes
	if start >= r.sp.End || r.idx >= r.file.recs {
		return Record{}, false, nil
	}
	rec := Data(r.idx, uint64(r.idx), fmt.Sprintf("%s#%d", r.file.path, r.idx))
	r.idx++
	r.read += r.in.recBytes
	return rec, true, nil
}

func (r *fakeSplitReader) Pos() int64 { return r.idx }

func (r *fakeSplitReader) Bytes() int64 {
	n := r.read
	r.read = 0
	return n
}

func (r *fakeSplitReader) Close() error { return nil }

func fakePlan(in *fakeSplitInput, chunk int64) *ScanPlan {
	return &ScanPlan{SplitSize: chunk, FixedSplits: in.fixedSplits(chunk)}
}

func drainSplitSource(t *testing.T, s *SplitScanSource) []string {
	t.Helper()
	var out []string
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r.Value.(string))
	}
	if s.Err() != nil {
		t.Fatalf("scan failed: %v", s.Err())
	}
	return out
}

func wantRecords(in *fakeSplitInput) []string {
	var want []string
	for _, f := range in.files {
		for i := int64(0); i < f.recs; i++ {
			want = append(want, fmt.Sprintf("%s#%d", f.path, i))
		}
	}
	sort.Strings(want)
	return want
}

func assertExactlyOnce(t *testing.T, got, want []string) {
	t.Helper()
	g := append([]string(nil), got...)
	sort.Strings(g)
	if len(g) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(g), len(want))
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("record %d = %q, want %q (duplicate or skip)", i, g[i], want[i])
		}
	}
}

func TestSplitScanSourceFixedSplitsExactlyOnce(t *testing.T) {
	in := &fakeSplitInput{recBytes: 10, files: []fakeFile{
		{path: "seg-a", recs: 37},
		{path: "seg-b", recs: 5},
		{path: "seg-c", recs: 100},
	}}
	plan := fakePlan(in, 64) // chunks do not divide record size: alignment is exercised
	const par = 3
	var got []string
	for sub := 0; sub < par; sub++ {
		s := &SplitScanSource{Plan: plan, Subtask: sub, Parallelism: par, Reader: &fakeSplitReader{in: in}}
		got = append(got, drainSplitSource(t, s)...)
	}
	assertExactlyOnce(t, got, wantRecords(in))

	splits, err := plan.Splits()
	if err != nil {
		t.Fatalf("Splits: %v", err)
	}
	if len(splits) < 3 {
		t.Fatalf("expected multiple splits, got %d", len(splits))
	}
}

func TestSplitScanSourceRestoreAtDifferentParallelism(t *testing.T) {
	in := &fakeSplitInput{recBytes: 10, files: []fakeFile{
		{path: "seg-a", recs: 50},
		{path: "seg-b", recs: 50},
	}}
	plan := fakePlan(in, 80)
	const oldPar = 2
	srcs := make([]*SplitScanSource, oldPar)
	for sub := range srcs {
		srcs[sub] = &SplitScanSource{Plan: plan, Subtask: sub, Parallelism: oldPar, Reader: &fakeSplitReader{in: in}}
	}
	// Consume part of the input: subtask 0 reads 12 records, subtask 1
	// reads 30 (mid-split positions included).
	var before []string
	for i := 0; i < 12; i++ {
		r, ok := srcs[0].Next()
		if !ok {
			t.Fatalf("subtask 0 ended early")
		}
		before = append(before, r.Value.(string))
	}
	for i := 0; i < 30; i++ {
		r, ok := srcs[1].Next()
		if !ok {
			t.Fatalf("subtask 1 ended early")
		}
		before = append(before, r.Value.(string))
	}
	blobs := map[int][]byte{}
	for sub, s := range srcs {
		blob, err := s.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot(%d): %v", sub, err)
		}
		blobs[sub] = blob
	}

	// Restore into a fresh plan at a different parallelism.
	const newPar = 3
	plan2 := fakePlan(in, 80)
	var after []string
	rsrcs := make([]*SplitScanSource, newPar)
	for sub := range rsrcs {
		rsrcs[sub] = &SplitScanSource{Plan: plan2, Subtask: sub, Parallelism: newPar, Reader: &fakeSplitReader{in: in}}
		if err := rsrcs[sub].RestoreAll(sub, newPar, blobs); err != nil {
			t.Fatalf("RestoreAll(%d): %v", sub, err)
		}
	}
	for _, s := range rsrcs {
		after = append(after, drainSplitSource(t, s)...)
	}
	assertExactlyOnce(t, append(before, after...), wantRecords(in))
}

func TestSplitScanSourceRestoreIgnoresGrownInput(t *testing.T) {
	in := &fakeSplitInput{recBytes: 10, files: []fakeFile{{path: "seg-a", recs: 40}}}
	plan := fakePlan(in, 150)
	s := &SplitScanSource{Plan: plan, Subtask: 0, Parallelism: 1, Reader: &fakeSplitReader{in: in}}
	var before []string
	for i := 0; i < 25; i++ {
		r, ok := s.Next()
		if !ok {
			t.Fatalf("ended early")
		}
		before = append(before, r.Value.(string))
	}
	wanted := wantRecords(in) // the 40 records visible at snapshot time
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// The topic grew after the checkpoint: the restored plan must rebuild
	// the original geometry from the snapshot signature, not re-plan over
	// the larger input.
	in.files[0].recs = 90
	plan2 := fakePlan(in, 150)
	s2 := &SplitScanSource{Plan: plan2, Subtask: 0, Parallelism: 1, Reader: &fakeSplitReader{in: in}}
	if err := s2.RestoreAll(0, 1, map[int][]byte{0: blob}); err != nil {
		t.Fatalf("RestoreAll: %v", err)
	}
	after := drainSplitSource(t, s2)
	assertExactlyOnce(t, append(before, after...), wanted)
}

func TestSplitScanSourceLegacyBlobRejected(t *testing.T) {
	blob, err := encodeScanState(splitScanState{V: 0, CurID: -1, Legacy: 7})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	in := &fakeSplitInput{recBytes: 10, files: []fakeFile{{path: "seg-a", recs: 4}}}
	plan := fakePlan(in, 0)
	s := &SplitScanSource{Plan: plan, Subtask: 0, Parallelism: 1, Reader: &fakeSplitReader{in: in}}
	if err := s.RestoreAll(0, 1, map[int][]byte{0: blob}); err == nil {
		t.Fatalf("legacy blob must be rejected by a fixed-split source")
	}
}

func TestTileSplits(t *testing.T) {
	splits := TileSplits(nil, "a", 100, 30)
	splits = TileSplits(splits, "b", 25, 30)
	want := []Split{
		{ID: 0, Path: "a", Start: 0, End: 30},
		{ID: 1, Path: "a", Start: 30, End: 60},
		{ID: 2, Path: "a", Start: 60, End: 90},
		{ID: 3, Path: "a", Start: 90, End: 100},
		{ID: 4, Path: "b", Start: 0, End: 25},
	}
	if len(splits) != len(want) {
		t.Fatalf("got %d splits, want %d", len(splits), len(want))
	}
	for i := range want {
		if splits[i] != want[i] {
			t.Fatalf("split %d = %+v, want %+v", i, splits[i], want[i])
		}
	}
	if got := TileSplits(nil, "empty", 0, 10); len(got) != 0 {
		t.Fatalf("empty input should tile to no splits, got %v", got)
	}
	if got := TileSplits(nil, "one", 50, 0); len(got) != 1 || got[0].End != 50 {
		t.Fatalf("chunk<=0 should yield one whole split, got %v", got)
	}
}
