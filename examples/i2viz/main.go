// I2 visualization demo (offline): ingest a synthetic signal through a
// typed streamline pipeline into the I2 history store, then walk through an
// interactive session — overview, zoom, pan — printing the ASCII rendering
// and the transfer statistics at every step, including the pixel-exactness
// check against the raw data.
//
//	go run ./examples/i2viz
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/i2"
	"repro/internal/workloads"
	"repro/streamline"
)

func main() {
	const (
		n      = 200_000
		rate   = 2000
		width  = 72
		height = 14
	)
	store := i2.NewStore(n, i2.WithTiers(50, 4, 4))
	gen := workloads.TimeSeries{Seed: 3, PerSec: rate}

	// Ingest: a bounded signal source feeding the history store — the same
	// Stream[i2.Point] pipeline would ingest a live unbounded signal.
	env := streamline.New(streamline.WithParallelism(1))
	signal := streamline.From(env, "signal", streamline.Generator(n,
		func(sub, par int, i int64) streamline.Keyed[i2.Point] {
			e := gen.At(i)
			return streamline.Keyed[i2.Point]{Ts: e.Ts, Value: i2.Point{Ts: e.Ts, V: e.Value}}
		}), streamline.WithSourceParallelism(1))
	raw := make([]i2.Point, 0, n)
	streamline.Sink(signal, "ingest", func(k streamline.Keyed[i2.Point]) {
		raw = append(raw, k.Value)
		store.Append(k.Value)
	})
	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}
	first, last := store.Span()
	fmt.Printf("ingested %d points over %.1fs of signal\n\n", store.Len(), float64(last-first)/1000)

	views := []struct {
		name string
		vp   i2.Viewport
	}{
		{"overview", i2.Viewport{From: first, To: last + 1, Width: width}},
		{"zoom 10x", i2.Viewport{From: 40_000, To: 50_000, Width: width}},
		{"pan right", i2.Viewport{From: 60_000, To: 70_000, Width: width}},
		{"deep zoom", i2.Viewport{From: 62_000, To: 62_500, Width: width}},
	}
	for _, v := range views {
		cols := store.Query(v.vp)
		pts := i2.Points(cols)
		rawClip := clip(raw, v.vp)
		lo, hi := i2.ValueRange(rawClip)
		sc := i2.Scale{VP: v.vp, VMin: lo, VMax: hi, H: height}
		reduced := i2.RenderLine(pts, sc)
		exact := i2.RenderLine(rawClip, sc)
		fmt.Printf("-- %s  [%d..%d)  raw=%d tuples  transferred=%d  reduction=%.0fx  pixel-errors=%d  tier=%dms\n",
			v.name, v.vp.From, v.vp.To, len(rawClip), len(pts),
			float64(len(rawClip))/float64(max(len(pts), 1)), exact.Diff(reduced),
			store.QueriedFromTier(v.vp))
		fmt.Print(reduced.String())
		fmt.Println()
	}
}

func clip(pts []i2.Point, vp i2.Viewport) []i2.Point {
	var out []i2.Point
	for _, p := range pts {
		if p.Ts >= vp.From && p.Ts < vp.To {
			out = append(out, p)
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
