package dataflow

import (
	"math"
	"testing"
)

type collectList struct {
	recs []Record
}

func (c *collectList) Collect(r Record) { c.recs = append(c.recs, r) }

func TestWindowJoinOpBasic(t *testing.T) {
	op := &WindowJoinOp{Size: 10}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	out := &collectList{}
	// Window [0,10): key 1 left {1,2}, right {10}; key 2 left {3}, right none.
	op.OnRecordEdge(0, Data(1, 1, 1.0), out)
	op.OnRecordEdge(0, Data(2, 1, 2.0), out)
	op.OnRecordEdge(1, Data(3, 1, 10.0), out)
	op.OnRecordEdge(0, Data(4, 2, 3.0), out)
	if len(out.recs) != 0 {
		t.Fatalf("join fired before watermark")
	}
	op.OnWatermark(10, out)
	if len(out.recs) != 2 {
		t.Fatalf("got %d pairs, want 2: %+v", len(out.recs), out.recs)
	}
	for _, r := range out.recs {
		p := r.Value.(JoinedPair)
		if p.Right != 10 || p.WindowStart != 0 || p.WindowEnd != 10 {
			t.Fatalf("pair %+v", p)
		}
	}
}

func TestWindowJoinOpSeparateWindows(t *testing.T) {
	op := &WindowJoinOp{Size: 10}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	out := &collectList{}
	op.OnRecordEdge(0, Data(5, 1, 1.0), out)
	op.OnRecordEdge(1, Data(15, 1, 2.0), out) // different window: no join
	op.Finish(out)
	if len(out.recs) != 0 {
		t.Fatalf("cross-window values joined: %+v", out.recs)
	}
}

func TestWindowJoinOpSnapshotRestore(t *testing.T) {
	op := &WindowJoinOp{Size: 10}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	out := &collectList{}
	op.OnRecordEdge(0, Data(1, 7, 1.0), out)
	op.OnRecordEdge(1, Data(2, 7, 5.0), out)
	groups := captureGroups(t, op)
	restored := &WindowJoinOp{Size: 10}
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	restored.OnRecordEdge(1, Data(3, 7, 6.0), out)
	restored.OnWatermark(math.MaxInt64, out)
	if len(out.recs) != 2 { // 1x5 and 1x6
		t.Fatalf("got %d pairs after restore: %+v", len(out.recs), out.recs)
	}
}

func TestWindowJoinEndToEnd(t *testing.T) {
	// Left: clicks (value=1) for keys 0..2; right: costs (value=key).
	g := NewGraph("join")
	left := g.AddSource("left", 1, SliceSource(func() []Record {
		var recs []Record
		for i := 0; i < 60; i++ {
			recs = append(recs, Data(int64(i), uint64(i%3), float64(1)))
		}
		return recs
	}()))
	right := g.AddSource("right", 1, SliceSource(func() []Record {
		var recs []Record
		for i := 0; i < 30; i++ {
			recs = append(recs, Data(int64(i*2), uint64(i%3), float64(i%3)))
		}
		return recs
	}()))
	join := g.AddOperator("join", 2, NewWindowJoinOp(20),
		Edge{From: left, Part: HashPartition},
		Edge{From: right, Part: HashPartition},
	)
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: join, Part: Rebalance})
	run(t, g)

	// Expected: per window [w, w+20) and key k: lefts = #i in window with
	// i%3==k; rights likewise from the right schedule; pairs = |L|*|R|.
	type wk struct {
		start int64
		key   uint64
	}
	want := map[wk]int{}
	for w := int64(0); w < 60; w += 20 {
		for k := uint64(0); k < 3; k++ {
			l, r := 0, 0
			for i := 0; i < 60; i++ {
				if int64(i) >= w && int64(i) < w+20 && uint64(i%3) == k {
					l++
				}
			}
			for i := 0; i < 30; i++ {
				ts := int64(i * 2)
				if ts >= w && ts < w+20 && uint64(i%3) == k {
					r++
				}
			}
			if l*r > 0 {
				want[wk{w, k}] = l * r
			}
		}
	}
	got := map[wk]int{}
	for _, rec := range sink.Records() {
		p := rec.Value.(JoinedPair)
		got[wk{p.WindowStart, rec.Key}]++
	}
	if len(got) != len(want) {
		t.Fatalf("got %d window-keys, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("window %+v: %d pairs, want %d", k, got[k], n)
		}
	}
}

func TestJoinSnapshotRoundTripEmpty(t *testing.T) {
	op := &WindowJoinOp{Size: 5}
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	groups := captureGroups(t, op)
	restored := &WindowJoinOp{Size: 5}
	if err := restored.Open(&OpContext{RestoreGroups: groups}); err != nil {
		t.Fatal(err)
	}
	out := &collectList{}
	restored.Finish(out)
	if len(out.recs) != 0 {
		t.Fatalf("empty op snapshot produced windows: %+v", out.recs)
	}
	if restored.wins.Len() != 0 {
		t.Fatalf("empty op snapshot restored %d keys", restored.wins.Len())
	}
}
