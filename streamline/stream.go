package streamline

import (
	"repro/internal/core"
	"repro/internal/dataflow"
)

// Keyed is the user-visible record of a typed stream: an event timestamp, a
// partitioning key, and a payload of the stream's element type. It is the
// typed rendering of the engine's untyped record.
type Keyed[T any] struct {
	// Ts is the event timestamp in event-time ticks (milliseconds in the
	// examples and experiments).
	Ts int64
	// Key is the partitioning key (meaningful after KeyBy).
	Key uint64
	// Value is the payload.
	Value T
}

// Stream is a typed handle to one stage of a pipeline — the unified
// abstraction over data at rest and data in motion. All transformations
// derive new streams; none execute until Env.Execute. Each typed operator
// lowers to the untyped record plan, so the optimizer (chaining, combiner
// insertion, Cutty sharing) applies unchanged.
type Stream[T any] struct {
	env   *Env
	inner *core.Stream
}

// box converts a typed record to the engine representation.
func box[T any](k Keyed[T]) dataflow.Record {
	return dataflow.Data(k.Ts, k.Key, k.Value)
}

// unbox converts an engine record back to its typed form. It panics on a
// payload of the wrong type, which indicates a bug in the lowering layer —
// typed plans never mix payload types on one edge.
func unbox[T any](r dataflow.Record) Keyed[T] {
	return Keyed[T]{Ts: r.Ts, Key: r.Key, Value: r.Value.(T)}
}

// Inner exposes the untyped stream this handle lowers to (diagnostics and
// interop with internal/core builders).
func (s *Stream[T]) Inner() *core.Stream { return s.inner }

// Map derives a stream by applying f to every element. Timestamps and keys
// are preserved.
func Map[T, U any](s *Stream[T], name string, f func(T) U) *Stream[U] {
	inner := s.inner.Map(name, func(r dataflow.Record) dataflow.Record {
		r.Value = f(r.Value.(T))
		return r
	})
	return &Stream[U]{env: s.env, inner: inner}
}

// Filter derives a stream keeping elements for which f returns true.
func Filter[T any](s *Stream[T], name string, f func(T) bool) *Stream[T] {
	inner := s.inner.Filter(name, func(r dataflow.Record) bool {
		return f(r.Value.(T))
	})
	return &Stream[T]{env: s.env, inner: inner}
}

// Emitter receives the elements a FlatMap function produces. Emitted
// elements inherit the input record's timestamp and key unless EmitAt is
// used. It is passed by value — per-record, no heap allocation.
type Emitter[U any] struct {
	ts  int64
	key uint64
	out dataflow.Collector
}

// Emit sends one element downstream with the input's timestamp and key.
func (e Emitter[U]) Emit(v U) { e.out.Collect(dataflow.Data(e.ts, e.key, v)) }

// EmitAt sends one element downstream with an explicit timestamp; the key
// is still inherited from the input record.
func (e Emitter[U]) EmitAt(ts int64, v U) { e.out.Collect(dataflow.Data(ts, e.key, v)) }

// FlatMap derives a stream where f may emit any number of elements per
// input.
func FlatMap[T, U any](s *Stream[T], name string, f func(T, Emitter[U])) *Stream[U] {
	inner := s.inner.FlatMap(name, func(r dataflow.Record, out dataflow.Collector) {
		f(r.Value.(T), Emitter[U]{ts: r.Ts, key: r.Key, out: out})
	})
	return &Stream[U]{env: s.env, inner: inner}
}

// KeyBy re-keys every element with keyFn. The next shuffling transformation
// (ReduceByKey, WindowAggregate, JoinWindow) partitions by this key.
func KeyBy[T any](s *Stream[T], name string, keyFn func(T) uint64) *Stream[T] {
	inner := s.inner.KeyBy(name, func(r dataflow.Record) uint64 {
		return keyFn(r.Value.(T))
	})
	return &Stream[T]{env: s.env, inner: inner}
}

// KeyByRecord re-keys every element with keyFn, which sees the full Keyed
// record — timestamp and currently stamped key included. Use it when the
// source already stamps a meaningful key; KeyBy is the value-only form.
func KeyByRecord[T any](s *Stream[T], name string, keyFn func(Keyed[T]) uint64) *Stream[T] {
	inner := s.inner.KeyBy(name, func(r dataflow.Record) uint64 {
		return keyFn(unbox[T](r))
	})
	return &Stream[T]{env: s.env, inner: inner}
}

// KeyByString re-keys every element by hashing the string keyFn extracts
// (FNV-1a, via the engine's KeyOf).
func KeyByString[T any](s *Stream[T], name string, keyFn func(T) string) *Stream[T] {
	return KeyBy(s, name, func(v T) uint64 { return dataflow.KeyOf(keyFn(v)) })
}

// KeyOf hashes an arbitrary string to a partitioning key — the same hash
// KeyByString applies, exposed for callers that pre-compute keys.
func KeyOf(s string) uint64 { return dataflow.KeyOf(s) }

// ReduceByKey aggregates float64 elements per key with the associative,
// commutative function f. In bounded execution it emits one element per key
// at the end; in continuous mode (emitEach) it emits every update. The
// optimizer inserts a combiner before the shuffle according to the
// environment's CombinerMode.
func ReduceByKey(s *Stream[float64], name string, f func(acc, v float64) float64, emitEach bool) *Stream[float64] {
	return &Stream[float64]{env: s.env, inner: s.inner.ReduceByKey(name, f, emitEach)}
}

// JoinedPair is one match of a windowed equi-join: the left and right
// values that shared a key within one tumbling window.
type JoinedPair[L, R any] struct {
	WindowStart int64
	WindowEnd   int64
	Left        L
	Right       R
}

// JoinWindow equi-joins this stream (left) with other (right) on the
// element key within tumbling event-time windows of the given size. Both
// streams must be keyed (KeyBy first). The engine's join operates on
// float64 payloads, so both sides are Stream[float64]. Unlike the other
// operators, the lowering appends one re-typing map stage after the join;
// it sits on a forward edge, so chaining fuses it into the join subtask.
func JoinWindow(s *Stream[float64], name string, other *Stream[float64], size int64) *Stream[JoinedPair[float64, float64]] {
	joined := s.inner.JoinWindow(name, other.inner, size)
	// Rebox the engine's pair type into the typed pair on a chained edge.
	inner := joined.Map(name+"-typed", func(r dataflow.Record) dataflow.Record {
		p := r.Value.(dataflow.JoinedPair)
		r.Value = JoinedPair[float64, float64]{
			WindowStart: p.WindowStart,
			WindowEnd:   p.WindowEnd,
			Left:        p.Left,
			Right:       p.Right,
		}
		return r
	})
	return &Stream[JoinedPair[float64, float64]]{env: s.env, inner: inner}
}

// Union merges this stream with others of the same element type (no
// ordering guarantee).
func Union[T any](s *Stream[T], name string, others ...*Stream[T]) *Stream[T] {
	rest := make([]*core.Stream, len(others))
	for i, o := range others {
		rest[i] = o.inner
	}
	return &Stream[T]{env: s.env, inner: s.inner.Union(name, rest...)}
}

// Sink terminates the stream invoking f for every element.
func Sink[T any](s *Stream[T], name string, f func(Keyed[T])) {
	s.inner.Sink(name, func(r dataflow.Record) { f(unbox[T](r)) })
}

// Results holds the records a Collect terminal gathered; read it after
// Env.Execute returns.
type Results[T any] struct {
	sink *dataflow.CollectSink
}

// Records returns everything collected so far, unboxed.
func (c *Results[T]) Records() []Keyed[T] {
	recs := c.sink.Records()
	out := make([]Keyed[T], len(recs))
	for i, r := range recs {
		out[i] = unbox[T](r)
	}
	return out
}

// Collect terminates the stream into an in-memory Results handle.
func Collect[T any](s *Stream[T], name string) *Results[T] {
	return &Results[T]{sink: s.inner.Collect(name)}
}
