// Package core is STREAMLINE's primary contribution: the single uniform
// programming model over data at rest and data in motion. One fluent
// pipeline API describes a computation; whether the input is a bounded
// collection (batch) or an unbounded generator (stream), the identical plan
// runs on the identical pipelined engine (internal/dataflow) — eliminating
// the dual-system architectures (and their "system and human latency") the
// paper motivates.
//
// The paper promises a model that "can automatically be optimized,
// parallelized, and adopted to the system load, data distribution, and
// architecture". The optimizer here implements exactly those levers:
//
//   - operator chaining (forward edges fuse into one goroutine),
//   - automatic combiner (pre-aggregation) insertion before hash shuffles,
//     with a runtime-adaptive mode that samples the key distribution and
//     enables combining only when duplicates make it profitable,
//   - parallelism defaulting to the machine's CPU count (architecture) with
//     per-stage overrides,
//   - Cutty-backed window aggregation, sharing slices across all window
//     queries registered on the same keyed stream.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/agg"
	"repro/internal/dataflow"
	"repro/internal/state"
	"repro/internal/window"
)

// CombinerMode controls automatic pre-aggregation before hash shuffles.
type CombinerMode uint8

const (
	// CombinerAuto samples the key distribution at runtime and enables
	// combining when it is profitable (the default).
	CombinerAuto CombinerMode = iota
	// CombinerOn always pre-aggregates.
	CombinerOn
	// CombinerOff never pre-aggregates (ablation baseline).
	CombinerOff
)

// Environment owns a pipeline under construction and its execution options.
type Environment struct {
	graph       *dataflow.Graph
	parallelism int
	chaining    bool
	vectorize   bool
	vecKeyed    bool
	fusion      bool
	combiner    CombinerMode
	backend     state.Backend
	ckptEvery   time.Duration
	buildErr    error
	job         *dataflow.Job

	// Distributed-execution configuration, consumed by the streamline
	// layer's ExecuteDistributed (plain Execute ignores it).
	workers       int
	listenAddr    string
	selfSpawn     bool
	pipeline      string
	pipeArgs      []string
	onListen      func(addr string)
	distCompleted int64

	// Supervision configuration, consumed by ExecuteSupervised and by
	// ExecuteDistributed when WithSupervision is given.
	supervise    bool
	maxRestarts  int
	backoffBase  time.Duration
	backoffMax   time.Duration
	hbInterval   time.Duration
	hbTimeout    time.Duration
	rejoinWindow time.Duration
}

// Option configures an Environment.
type Option func(*Environment)

// WithParallelism sets the default operator parallelism. Zero (default)
// means "adapt to the architecture": the machine's CPU count, capped at 4.
func WithParallelism(p int) Option {
	return func(e *Environment) { e.parallelism = p }
}

// WithChaining toggles operator chaining (default on).
func WithChaining(on bool) Option {
	return func(e *Environment) { e.chaining = on }
}

// WithVectorizedChains toggles the batch-at-a-time fast path through operator
// chains (default on). Purely physical: results are identical either way and
// the setting is not part of the distributed PlanSpec.
func WithVectorizedChains(on bool) Option {
	return func(e *Environment) { e.vectorize = on }
}

// WithVectorizedKeyedOps toggles the keyed half of the vectorized fast path
// (default on): batched keyed operators with run-grouped state access and
// batch-at-a-time hash routing in the exchange stager. Purely physical like
// WithVectorizedChains — results, plans and snapshots are identical either
// way — and not part of the distributed PlanSpec.
func WithVectorizedKeyedOps(on bool) Option {
	return func(e *Environment) { e.vecKeyed = on }
}

// WithStageFusion toggles typed stage fusion in the streamline layer (default
// on): runs of adjacent Map/Filter/FlatMap stages lower into one fused
// operator that keeps values in their concrete type across stages. Fusion
// changes the lowered plan (fused node names concatenate the stage names)
// deterministically — every process building the same pipeline with the same
// setting produces the same PlanSpec fingerprint — and never changes results.
func WithStageFusion(on bool) Option {
	return func(e *Environment) { e.fusion = on }
}

// WithCombiner sets the combiner mode (default CombinerAuto).
func WithCombiner(m CombinerMode) Option {
	return func(e *Environment) { e.combiner = m }
}

// WithCheckpointing enables asynchronous barrier snapshots.
func WithCheckpointing(b state.Backend, every time.Duration) Option {
	return func(e *Environment) {
		e.backend = b
		e.ckptEvery = every
	}
}

// WithStateBackend sets the snapshot backend without enabling periodic
// checkpoints — the recovery-side option: an environment that only restores
// (ExecuteRestored) or that checkpoints on its own schedule pairs this with
// WithCheckpointing on the writing side.
func WithStateBackend(b state.Backend) Option {
	return func(e *Environment) { e.backend = b }
}

// WithNumKeyGroups sets the plan's key-group count — the unit of keyed-state
// partitioning and hash routing (default state.DefaultNumKeyGroups). A
// logical-plan constant: results are identical at every value and any
// parallelism, but a checkpoint restores only into a plan with the same
// value, so pick it once per job (comfortably above the largest parallelism
// the job may ever rescale to) and keep it.
func WithNumKeyGroups(n int) Option {
	return func(e *Environment) { e.graph.NumKeyGroups = n }
}

// WithBatchSize sets how many records the exchange layer stages per batch
// before shipping it to a downstream subtask (default
// dataflow.DefaultBatchSize). 1 degenerates to per-record exchange. A purely
// physical knob: the logical plan and its results are identical at every
// batch size.
func WithBatchSize(n int) Option {
	return func(e *Environment) { e.graph.BatchSize = n }
}

// WithFlushInterval bounds how long a record may sit in an exchange staging
// buffer before being shipped — the latency guard for in-motion sources
// (default dataflow.DefaultFlushInterval). Negative disables the periodic
// flush: batches then ship only when full or at control records.
func WithFlushInterval(d time.Duration) Option {
	return func(e *Environment) { e.graph.FlushInterval = d }
}

// WithWorkers sets the number of worker processes a distributed execution
// expects (0, the default, runs single-process).
func WithWorkers(n int) Option {
	return func(e *Environment) { e.workers = n }
}

// WithListenAddr sets the coordinator's control listen address for
// distributed execution (default "127.0.0.1:0", an ephemeral loopback port).
func WithListenAddr(addr string) Option {
	return func(e *Environment) { e.listenAddr = addr }
}

// WithSelfSpawn makes ExecuteDistributed start its own worker processes by
// re-executing the current binary (the workers rebuild the identical
// pipeline and connect back). Without it the coordinator waits for
// externally started workers.
func WithSelfSpawn() Option {
	return func(e *Environment) { e.selfSpawn = true }
}

// WithPipelineRef names the registered pipeline (and its arguments) that
// externally started generic workers should build to mirror this
// environment's graph.
func WithPipelineRef(name string, args ...string) Option {
	return func(e *Environment) { e.pipeline = name; e.pipeArgs = args }
}

// WithSupervision turns on supervised execution: on failure the run
// restores from the newest completed checkpoint and relaunches, up to
// maxRestarts times (0 picks the default budget of 5; negative disables
// restarts while keeping supervision's error shaping). Up to two backoff
// durations tune the restart pacing: the base delay before the first
// restart (doubling per consecutive restart) and the delay cap.
func WithSupervision(maxRestarts int, backoff ...time.Duration) Option {
	return func(e *Environment) {
		e.supervise = true
		e.maxRestarts = maxRestarts
		if len(backoff) > 0 {
			e.backoffBase = backoff[0]
		}
		if len(backoff) > 1 {
			e.backoffMax = backoff[1]
		}
	}
}

// WithHeartbeat tunes the distributed control plane's liveness protocol:
// both sides ping every interval and declare the peer dead after a silent
// timeout. Zero values keep the transport defaults (1s / 4s).
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(e *Environment) { e.hbInterval, e.hbTimeout = interval, timeout }
}

// WithRejoinWindow bounds how long a supervised recovery waits for the full
// worker complement to redial before degrading onto the survivors.
func WithRejoinWindow(d time.Duration) Option {
	return func(e *Environment) { e.rejoinWindow = d }
}

// WithOnListen registers a callback invoked with the coordinator's bound
// control address before workers are awaited — how callers learn an
// ephemeral port (tests, or printing the address for external workers).
func WithOnListen(f func(addr string)) Option {
	return func(e *Environment) { e.onListen = f }
}

// Distributed-configuration accessors for the driver layer.
func (e *Environment) Workers() int                    { return e.workers }
func (e *Environment) ListenAddr() string              { return e.listenAddr }
func (e *Environment) SelfSpawn() bool                 { return e.selfSpawn }
func (e *Environment) PipelineRef() (string, []string) { return e.pipeline, e.pipeArgs }
func (e *Environment) OnListen() func(addr string)     { return e.onListen }

// Supervision reports whether supervised execution is on, with the restart
// budget and backoff pacing.
func (e *Environment) Supervision() (on bool, maxRestarts int, base, max time.Duration) {
	return e.supervise, e.maxRestarts, e.backoffBase, e.backoffMax
}

// EnsureSupervision turns supervision on with defaults if no
// WithSupervision option was given (ExecuteSupervised's entry path).
func (e *Environment) EnsureSupervision() {
	if !e.supervise {
		e.supervise = true
	}
}

// Heartbeat returns the configured control-plane liveness settings (zeros:
// transport defaults).
func (e *Environment) Heartbeat() (interval, timeout time.Duration) {
	return e.hbInterval, e.hbTimeout
}

// RejoinWindow returns the configured degradation wait (zero: default).
func (e *Environment) RejoinWindow() time.Duration { return e.rejoinWindow }

// Chaining reports whether operator chaining is enabled — part of the
// physical-plan identity a distributed worker must reproduce.
func (e *Environment) Chaining() bool { return e.chaining }

// StageFusion reports whether typed stage fusion is enabled. Read by the
// streamline layer at lowering time.
func (e *Environment) StageFusion() bool { return e.fusion }

// Backend returns the configured snapshot backend (nil when unset) and the
// checkpoint interval (0 when periodic checkpointing is off).
func (e *Environment) Backend() (state.Backend, time.Duration) {
	return e.backend, e.ckptEvery
}

// BuildErr returns the first pipeline construction error, if any.
func (e *Environment) BuildErr() error { return e.buildErr }

// NoteDistributedCheckpoints records how many checkpoints a distributed run
// completed, so CompletedCheckpoints answers uniformly for both modes.
func (e *Environment) NoteDistributedCheckpoints(n int64) { e.distCompleted += n }

// NewEnvironment returns an empty pipeline environment.
func NewEnvironment(opts ...Option) *Environment {
	e := &Environment{
		graph:     dataflow.NewGraph("streamline"),
		chaining:  true,
		vectorize: true,
		vecKeyed:  true,
		fusion:    true,
		combiner:  CombinerAuto,
	}
	for _, o := range opts {
		o(e)
	}
	if e.parallelism <= 0 {
		// "adopted to ... the architecture": size to the machine.
		p := runtime.NumCPU()
		if p > 4 {
			p = 4
		}
		e.parallelism = p
	}
	return e
}

func (e *Environment) fail(err error) {
	if e.buildErr == nil {
		e.buildErr = err
	}
}

// Fail records a pipeline construction error; Execute will return the first
// one. Typed facades layered over this environment use it to surface their
// own build-time failures through the same channel.
func (e *Environment) Fail(err error) { e.fail(err) }

// Execute runs the pipeline to completion (bounded sources) or until the
// context is cancelled (unbounded sources).
func (e *Environment) Execute(ctx context.Context) error {
	if e.buildErr != nil {
		return e.buildErr
	}
	opts := []dataflow.JobOption{
		dataflow.WithChaining(e.chaining),
		dataflow.WithVectorizedChains(e.vectorize),
		dataflow.WithVectorizedKeyedOps(e.vecKeyed),
	}
	if e.backend != nil {
		opts = append(opts, dataflow.WithCheckpointing(e.backend, e.ckptEvery))
	}
	e.job = dataflow.NewJob(e.graph, opts...)
	return e.job.Run(ctx)
}

// ExecuteRestored runs the pipeline starting from a recovery snapshot.
func (e *Environment) ExecuteRestored(ctx context.Context, snap *state.Snapshot) error {
	if e.buildErr != nil {
		return e.buildErr
	}
	opts := []dataflow.JobOption{
		dataflow.WithChaining(e.chaining),
		dataflow.WithVectorizedChains(e.vectorize),
		dataflow.WithVectorizedKeyedOps(e.vecKeyed),
		dataflow.WithRestore(snap),
	}
	if e.backend != nil {
		opts = append(opts, dataflow.WithCheckpointing(e.backend, e.ckptEvery))
	}
	e.job = dataflow.NewJob(e.graph, opts...)
	return e.job.Run(ctx)
}

// CompletedCheckpoints reports the number of persisted checkpoints of the
// last Execute call.
func (e *Environment) CompletedCheckpoints() int64 {
	if e.job == nil {
		return e.distCompleted
	}
	return e.distCompleted + e.job.CompletedCheckpoints()
}

// Graph exposes the underlying job graph (diagnostics and tests).
func (e *Environment) Graph() *dataflow.Graph { return e.graph }

// Stream is a handle to one stage of a pipeline — the unified abstraction
// for data at rest and data in motion. All transformations derive new
// streams; none execute until Environment.Execute.
type Stream struct {
	env   *Environment
	node  *dataflow.Node
	keyed bool
}

// FromSource creates a stream from a pluggable source connector: the
// factory builds one reader per subtask. This is the single entry point
// every specialized constructor (records, generators, channels, files,
// hybrid history→live compositions) lowers through. parallelism <= 0 uses
// the environment default.
func (e *Environment) FromSource(name string, parallelism int, f dataflow.SourceFactory) *Stream {
	if parallelism <= 0 {
		parallelism = e.parallelism
	}
	n := e.graph.AddSource(name, parallelism, f)
	return &Stream{env: e, node: n}
}

// FromRecords creates a bounded stream from in-memory records (data at
// rest). Records are split across the source's subtasks round-robin; the
// source runs at the environment's default parallelism.
func (e *Environment) FromRecords(name string, recs []dataflow.Record) *Stream {
	return e.FromSource(name, 0, dataflow.SliceSource(recs))
}

// SplitCount divides a bounded record count across parallelism subtasks,
// handing the remainder to the lowest subtask indices. Non-positive counts
// (unbounded or empty sources) pass through unchanged.
func SplitCount(count int64, subtask, parallelism int) int64 {
	if count <= 0 {
		return count
	}
	c := count / int64(parallelism)
	if int64(subtask) < count%int64(parallelism) {
		c++
	}
	return c
}

// genSource builds the per-subtask GenSource for a generator stream,
// splitting a bounded count across subtasks.
func genSource(count int64, gen func(subtask, parallelism int, i int64) dataflow.Record) func(sub, par int) *dataflow.GenSource {
	return func(sub, par int) *dataflow.GenSource {
		return &dataflow.GenSource{
			N:   SplitCount(count, sub, par),
			Gen: func(i int64) dataflow.Record { return gen(sub, par, i) },
		}
	}
}

// FromGenerator creates a stream from a deterministic generator. count < 0
// makes it unbounded (data in motion); otherwise it is a bounded stream that
// ends — the same plan either way.
func (e *Environment) FromGenerator(name string, parallelism int, count int64, gen func(subtask, parallelism int, i int64) dataflow.Record) *Stream {
	mk := genSource(count, gen)
	return e.FromSource(name, parallelism, func(sub, par int) dataflow.SourceFunc {
		return mk(sub, par)
	})
}

// FromPacedGenerator is FromGenerator throttled to perSec records per second
// per subtask — the live-stream simulation used by the latency experiments.
func (e *Environment) FromPacedGenerator(name string, parallelism int, count int64, perSec float64, gen func(subtask, parallelism int, i int64) dataflow.Record) *Stream {
	mk := genSource(count, gen)
	return e.FromSource(name, parallelism, func(sub, par int) dataflow.SourceFunc {
		return &dataflow.PacedSource{PerSec: perSec, Inner: mk(sub, par)}
	})
}

// Map derives a stream by applying f to every record.
func (s *Stream) Map(name string, f func(dataflow.Record) dataflow.Record) *Stream {
	n := s.env.graph.AddOperator(name, s.node.Parallelism, func() dataflow.Operator {
		return &dataflow.MapOp{F: f}
	}, dataflow.Edge{From: s.node, Part: dataflow.Forward})
	return &Stream{env: s.env, node: n, keyed: s.keyed}
}

// Filter derives a stream keeping records for which f returns true.
func (s *Stream) Filter(name string, f func(dataflow.Record) bool) *Stream {
	n := s.env.graph.AddOperator(name, s.node.Parallelism, func() dataflow.Operator {
		return &dataflow.FilterOp{F: f}
	}, dataflow.Edge{From: s.node, Part: dataflow.Forward})
	return &Stream{env: s.env, node: n, keyed: s.keyed}
}

// FlatMap derives a stream where f may emit any number of records per input.
func (s *Stream) FlatMap(name string, f func(dataflow.Record, dataflow.Collector)) *Stream {
	n := s.env.graph.AddOperator(name, s.node.Parallelism, func() dataflow.Operator {
		return &dataflow.FlatMapOp{F: f}
	}, dataflow.Edge{From: s.node, Part: dataflow.Forward})
	return &Stream{env: s.env, node: n, keyed: s.keyed}
}

// KeyBy re-keys every record with keyFn. The next shuffling transformation
// partitions by this key.
func (s *Stream) KeyBy(name string, keyFn func(dataflow.Record) uint64) *Stream {
	n := s.env.graph.AddOperator(name, s.node.Parallelism, func() dataflow.Operator {
		return &dataflow.MapOp{F: func(r dataflow.Record) dataflow.Record {
			r.Key = keyFn(r)
			return r
		}}
	}, dataflow.Edge{From: s.node, Part: dataflow.Forward})
	return &Stream{env: s.env, node: n, keyed: true}
}

// ReduceByKey aggregates float64 values per key with the associative,
// commutative function f. In bounded execution it emits one record per key
// at the end; in continuous mode (emitEach) it emits every update. The
// optimizer inserts a combiner before the shuffle according to the
// environment's CombinerMode.
func (s *Stream) ReduceByKey(name string, f func(acc, v float64) float64, emitEach bool) *Stream {
	upstream := s.node
	// Combiner insertion: pre-aggregate on the producer side of the hash
	// shuffle so the shuffle moves partial aggregates, not raw records.
	if s.env.combiner != CombinerOff {
		adaptive := s.env.combiner == CombinerAuto
		comb := s.env.graph.AddOperator(name+"-combine", upstream.Parallelism, func() dataflow.Operator {
			return &CombinerOp{F: f, FlushEvery: 1024, Adaptive: adaptive}
		}, dataflow.Edge{From: upstream, Part: dataflow.Forward})
		upstream = comb
	}
	n := s.env.graph.AddOperator(name, s.env.parallelism, func() dataflow.Operator {
		return &dataflow.KeyedReduceOp{F: f, EmitEach: emitEach}
	}, dataflow.Edge{From: upstream, Part: dataflow.HashPartition})
	return &Stream{env: s.env, node: n, keyed: true}
}

// WindowAggregate runs one or more window queries over the keyed stream,
// sharing aggregation work between them with the Cutty engine. Records'
// values must be float64. Results carry dataflow.WindowResult values.
func (s *Stream) WindowAggregate(name string, queries ...WindowedQuery) *Stream {
	if len(queries) == 0 {
		s.env.fail(fmt.Errorf("core: WindowAggregate %q requires at least one query", name))
		return s
	}
	if !s.keyed {
		s.env.fail(fmt.Errorf("core: WindowAggregate %q requires a keyed stream (call KeyBy first)", name))
		return s
	}
	wq := make([]dataflow.WindowQuery, len(queries))
	for i, q := range queries {
		wq[i] = dataflow.WindowQuery{Spec: q.Window, Fn: q.Fn}
	}
	n := s.env.graph.AddOperator(name, s.env.parallelism, dataflow.NewWindowOp(wq...),
		dataflow.Edge{From: s.node, Part: dataflow.HashPartition})
	return &Stream{env: s.env, node: n, keyed: true}
}

// WindowedQuery pairs a window spec with an aggregate for WindowAggregate.
type WindowedQuery struct {
	Window window.Spec
	Fn     *agg.FnF64
}

// JoinWindow equi-joins this stream (left) with other (right) on the record
// key within tumbling event-time windows of the given size. Both streams
// must be keyed. Results carry dataflow.JoinedPair values.
func (s *Stream) JoinWindow(name string, other *Stream, size int64) *Stream {
	if !s.keyed || !other.keyed {
		s.env.fail(fmt.Errorf("core: JoinWindow %q requires both streams keyed (call KeyBy first)", name))
		return s
	}
	n := s.env.graph.AddOperator(name, s.env.parallelism, dataflow.NewWindowJoinOp(size),
		dataflow.Edge{From: s.node, Part: dataflow.HashPartition},
		dataflow.Edge{From: other.node, Part: dataflow.HashPartition},
	)
	return &Stream{env: s.env, node: n, keyed: true}
}

// Union merges this stream with others (no ordering guarantee).
func (s *Stream) Union(name string, others ...*Stream) *Stream {
	edges := []dataflow.Edge{{From: s.node, Part: dataflow.Rebalance}}
	for _, o := range others {
		edges = append(edges, dataflow.Edge{From: o.node, Part: dataflow.Rebalance})
	}
	n := s.env.graph.AddOperator(name, s.env.parallelism, func() dataflow.Operator {
		return &dataflow.MapOp{F: func(r dataflow.Record) dataflow.Record { return r }}
	}, edges...)
	return &Stream{env: s.env, node: n}
}

// Sink terminates the stream invoking f for every record.
func (s *Stream) Sink(name string, f func(dataflow.Record)) {
	n := s.env.graph.AddOperator(name, 1, func() dataflow.Operator {
		return &dataflow.FuncSink{F: f}
	}, dataflow.Edge{From: s.node, Part: dataflow.Rebalance})
	// The sink closure observes results: in distributed execution its node
	// must run in the submitting process.
	n.Pinned = true
}

// SinkOperator terminates the stream into a custom stateful operator at
// parallelism 1. Unlike Sink's plain function, the operator participates in
// checkpointing (Snapshot/Restore through its OpContext blob) — the hook
// for exactly-once external sinks such as the topic Persist connector.
func (s *Stream) SinkOperator(name string, f func() dataflow.Operator) {
	n := s.env.graph.AddOperator(name, 1, f, dataflow.Edge{From: s.node, Part: dataflow.Rebalance})
	// Sink operators write to destinations owned by the submitting process
	// (a topic store's file handles, a caller's buffer): pin them there.
	n.Pinned = true
}

// Collect terminates the stream into a CollectSink whose records can be read
// after Execute returns.
func (s *Stream) Collect(name string) *dataflow.CollectSink {
	sink := &dataflow.CollectSink{}
	n := s.env.graph.AddOperator(name, 1, sink.Factory(), dataflow.Edge{From: s.node, Part: dataflow.Rebalance})
	// The caller reads the collected records from this process's sink
	// instance, so the node must execute here.
	n.Pinned = true
	return sink
}
