// Quickstart: the smallest complete STREAMLINE pipeline.
//
// One program, one engine: a bounded generator ("data at rest") flows
// through keyBy -> windowed aggregation -> sink. Swap the source for an
// unbounded one and nothing else changes — that is the paper's uniform
// programming model.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
)

func main() {
	env := core.NewEnvironment(core.WithParallelism(2))

	// 10k sensor readings from 4 sensors, one per millisecond.
	readings := env.FromGenerator("sensors", 1, 10_000, func(sub, par int, i int64) dataflow.Record {
		sensor := uint64(i % 4)
		value := float64(sensor*10) + float64(i%7)
		return dataflow.Data(i, sensor, value)
	})

	// Per-sensor tumbling 1s averages — Cutty shares the aggregation work
	// if more queries are added to the same WindowAggregate call.
	results := readings.
		KeyBy("sensor", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("avg-1s",
			core.WindowedQuery{Window: window.Tumbling(1000), Fn: agg.AvgF64()},
		).
		Collect("out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	byWindow := map[int64]map[uint64]float64{}
	for _, r := range results.Records() {
		wr := r.Value.(dataflow.WindowResult)
		if byWindow[wr.Start] == nil {
			byWindow[wr.Start] = map[uint64]float64{}
		}
		byWindow[wr.Start][r.Key] = wr.Value
	}
	fmt.Printf("windows: %d (10 seconds of data, tumbling 1s, 4 sensors)\n", len(byWindow))
	for start := int64(0); start < 3000; start += 1000 {
		fmt.Printf("window [%4d,%4d):", start, start+1000)
		for s := uint64(0); s < 4; s++ {
			fmt.Printf("  sensor%d=%.2f", s, byWindow[start][s])
		}
		fmt.Println()
	}
	fmt.Println("... (remaining windows omitted)")
}
