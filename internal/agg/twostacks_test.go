package agg

import (
	"testing"
	"testing/quick"
)

func TestTwoStacksEmpty(t *testing.T) {
	s := NewTwoStacks(0, func(a, b int) int { return a + b })
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Aggregate(); got != 0 {
		t.Fatalf("empty aggregate = %d", got)
	}
}

func TestTwoStacksPushPop(t *testing.T) {
	s := NewTwoStacks(0, func(a, b int) int { return a + b })
	s.Push(1)
	s.Push(2)
	s.Push(3)
	if got := s.Aggregate(); got != 6 {
		t.Fatalf("aggregate = %d, want 6", got)
	}
	s.PopFront() // removes 1
	if got := s.Aggregate(); got != 5 {
		t.Fatalf("aggregate = %d, want 5", got)
	}
	s.Push(10)
	s.PopFront() // removes 2
	s.PopFront() // removes 3
	if got := s.Aggregate(); got != 10 {
		t.Fatalf("aggregate = %d, want 10", got)
	}
}

func TestTwoStacksPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("PopFront on empty should panic")
		}
	}()
	NewTwoStacks(0, func(a, b int) int { return a + b }).PopFront()
}

// Property: TwoStacks matches Naive under random push/pop sequences with a
// non-commutative combine (order sensitivity check through the flip path).
func TestTwoStacksMatchesNaiveNonCommutative(t *testing.T) {
	concat := func(a, b string) string { return a + b }
	f := func(ops []uint8) bool {
		ts := NewTwoStacks("", concat)
		na := NewNaive("", concat)
		next := 0
		for _, op := range ops {
			if op%3 == 2 && ts.Len() > 0 {
				ts.PopFront()
				na.EvictFront()
			} else {
				s := string(rune('a' + next%26))
				next++
				ts.Push(s)
				na.Append(s)
			}
			if ts.Len() != na.Len() || ts.Aggregate() != na.Aggregate() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: sliding-window sum via TwoStacks equals a direct computation.
func TestTwoStacksSlidingSum(t *testing.T) {
	f := func(raw []uint8, wRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := int(wRaw)%8 + 1
		add := func(a, b int) int { return a + b }
		ts := NewTwoStacks(0, add)
		for i, r := range raw {
			ts.Push(int(r))
			if ts.Len() > w {
				ts.PopFront()
			}
			lo := i - w + 1
			if lo < 0 {
				lo = 0
			}
			want := 0
			for j := lo; j <= i; j++ {
				want += int(raw[j])
			}
			if ts.Aggregate() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
