// Package streamline is the public, typed surface of the STREAMLINE
// reproduction: one fluent, generics-based programming model over data at
// rest and data in motion, fed through one composable connector API.
//
// # Streams and operators
//
// A Stream[T] is a handle to one stage of a lazily-built pipeline. Typed
// operators — Map, Filter, FlatMap, KeyBy, ReduceByKey, WindowAggregate,
// JoinWindow, Union — derive new streams; Collect and Sink terminate them;
// Env.Execute runs the whole plan (Env.ExecuteRestored resumes it from a
// checkpoint). User-visible records are Keyed[T] values — no type
// assertions appear anywhere downstream of a typed source.
//
// # Sources: the connector API
//
// Every pipeline starts at From(env, name, src, opts...), where src is a
// Source[T] — a pluggable connector producing one Reader[T] per source
// subtask. The built-in connectors cover the whole at-rest/in-motion
// spectrum:
//
//   - Slice, KeyedSlice — bounded in-memory collections (data at rest)
//   - JSONL, CSV — files at rest (one file, a directory, or a glob),
//     decoded into T, scanned in parallel byte-range splits, replayed
//     exactly-once through checkpoints
//   - Generator — deterministic generators, bounded or unbounded
//   - Channel — live ingestion from a Go channel (data in motion)
//   - Paced — a rate-limiting decorator over any connector
//   - Hybrid — the at-rest→in-motion handoff: replay a bounded history
//     source, emit a handoff watermark covering the history the moment it
//     ends, then atomically switch to the live source
//
// Source options configure the stage without changing the connector:
// WithSourceParallelism, WithWatermarkEvery and WithWatermarkLag (event
// time cadence and bounded-disorder allowance), and WithTimestamps (an
// extractor re-stamping records with event time taken from the values).
// FromChannel, FromJSONL and FromCSV are one-line sugar over From; the
// legacy FromSlice/FromGenerator/FromPacedGenerator trio remains as
// deprecated wrappers that lower through the same path.
//
// # The splittable at-rest scan
//
// File connectors do not stripe rows across subtasks — they split bytes.
// The scan planner chops every input file into newline-aligned byte ranges
// of roughly WithSplitSize bytes (CSV ranges only where quoting provably
// cannot span lines; quoted files scan as one split each), and a shared
// per-stage assigner hands splits to subtasks dynamically: a subtask that
// finishes early pulls the next pending split, so skewed file sizes or
// decode costs never idle a worker. Each subtask therefore reads ~1/p of
// the input instead of scanning all of it and discarding (p−1)/p — history
// replay scales near-linearly with source parallelism (BENCH_scan.json
// records the trajectory). Snapshots store (split, byte offset): recovery
// Seeks straight to the position — O(remaining split), not O(file) — and,
// because split state is a work set rather than a position per subtask, a
// job may restore its file sources at a *different* parallelism; the
// remaining splits just redistribute. Splits are handed out in no
// particular timestamp order, so a scanning stage closes out event time at
// end of stream (or at Hybrid's handoff) instead of emitting in-flight
// cadence watermarks; pair files with WithTimestamps for real event time
// (the default timestamp is the record's byte offset).
//
// Whether the source is a file of history, a live channel, or a Hybrid of
// both, the identical plan runs on the identical pipelined engine — that is
// the paper's uniform model, and Hybrid is its headline scenario: a
// pipeline that bootstraps from stored data and continues on the live
// stream, with snapshot state recording phase and position so exactly-once
// recovery works across the handoff.
//
// # Topics: the embedded history store
//
// Files are history the user already has; topics are history the system
// keeps for itself. OpenTopicStore opens a directory of named topics, each
// an append-only log of length-prefixed, CRC-checked, timestamped records
// in rolling segment files. Persist(stream, store, "clicks") terminates a
// pipeline into a topic, and Topic[T](store, "clicks") replays it as a
// source — so Hybrid(Topic(store, "clicks"), Channel(live)) bootstraps a
// new job from the system's own retained history and continues live,
// closing the paper's at-rest→in-motion handoff into a loop.
//
// Topic sources are splittable exactly like files: sealed segments are
// planned into byte-range splits (WithSplitSize), assigned dynamically,
// snapshot as (split, byte offset), and restore at a different source
// parallelism. WithFollow turns a bounded topic replay into a tailing read
// that emits a handoff watermark at the stored high-water mark and then
// streams new appends as they land (follow mode runs at source
// parallelism 1).
//
// Durability and footprint are store options: WithFsync picks the flush
// policy (FsyncNever — OS-buffered, the default; FsyncAlways — fsync per
// append; FsyncInterval — at most every WithFsync period), WithSegmentBytes
// and WithSegmentAge control segment roll, and WithRetention drops whole
// sealed segments once the topic exceeds a byte or age budget. On open, a
// torn tail (a partial record from a crash mid-append) is truncated away;
// everything before it is intact.
//
// Persist is checkpoint-integrated: each snapshot records the topic's
// high-water offset, and a restored run truncates the topic back to that
// offset before resuming, so records appended after the checkpoint are not
// duplicated — the topic holds exactly-once output with respect to the
// restored lineage. A fresh (non-restored) run appends after whatever the
// topic already holds.
//
// Custom connectors implement Source[T]/Reader[T] directly: Next reports
// elements plus a ReadStatus (data, watermark, idle, end, handoff), and
// Snapshot/Restore serialize the read position for exactly-once recovery
// (MultiRestorer additionally lets a connector's state redistribute across
// a different source parallelism, the way the file connectors do).
//
// # Lowering
//
// Every typed operator and connector lowers onto the untyped record engine
// in internal/core and internal/dataflow, boxing values at operator
// boundaries. The facade therefore inherits the optimizer unchanged:
// operator chaining, adaptive combiner insertion before hash shuffles,
// architecture-sized parallelism, and Cutty multi-query window sharing all
// fire exactly as they do for hand-built untyped plans — a typed layer
// compiled onto an untyped dataflow, in the tradition of Flink's
// TypeInformation machinery.
//
// # The batched exchange
//
// Underneath, records cross subtask boundaries in pooled batches rather
// than one channel hop per record, so at-rest replay (slices, JSONL, CSV)
// runs at batch-engine speeds on the same pipelined engine. A staged batch
// ships when it reaches WithBatchSize records (default DefaultBatchSize),
// when WithFlushInterval elapses (default DefaultFlushInterval), and always
// before a watermark, checkpoint barrier, or end-of-stream marker — control
// records never overtake data, so event time and exactly-once snapshots
// behave identically at every batch size. The knobs trade throughput
// against freshness: bigger batches amortize exchange hops for data at
// rest, while a shorter flush interval bounds how long an in-motion record
// may wait in a half-full buffer. Fused operator chains are untouched —
// batching applies only at real exchange boundaries, and the logical plan
// never changes (WithBatchSize(1) is the per-record ablation baseline).
//
// # Vectorized operator chains
//
// The exchange is batched; so is execution. Two layers cooperate to keep
// records out of per-record dispatch on the hot path:
//
// Typed stage fusion. Adjacent stateless typed stages — Map, Filter,
// FlatMap — lower as ONE operator whose stage functions compose in native
// types: a run like Map→Filter→Map unboxes the record value once on entry,
// runs every stage on the concrete T, and boxes once on exit, instead of
// paying an interface box/unbox pair per stage. The fused operator's name
// concatenates its stage names with "+" ("scale+band+final"), so lowering
// is deterministic and distributed plan fingerprints still match across
// processes. Fusion never crosses a semantic boundary — KeyBy, windows,
// unions, sinks and any stage consumed by more than one downstream all end
// the run — and WithStageFusion(false) restores stage-per-operator
// lowering (the only option that intentionally changes the lowered plan;
// results are identical either way).
//
// Batch-at-a-time operators. Underneath, stateless operators implement the
// engine's vectorized contract: the chain driver hands each exchange batch
// through the chain as a whole — maps overwrite slots in place, filters
// compact survivors down, flatmaps emit into a reused scratch buffer — and
// survivors enter the outbound exchange under a single staging-lock
// acquisition. Batches split at watermarks, barriers and end markers, so
// control ordering, event time and exactly-once snapshots are untouched;
// WithVectorizedChains(false) is the per-record ablation baseline.
// BENCH_fusion.json records the measured win of both layers together
// (`streamline-bench -fusion`): throughput and allocations per record
// against per-record execution.
//
// Vectorized keyed operators. The keyed stages — ReduceByKey,
// WindowAggregate, JoinWindow — ride the same fast path instead of ending
// it: each contiguous data run is grouped by key in a reusable scratch
// table, and the per-key costs (key-group hash, state load, store) are
// paid once per distinct key per run rather than once per record, with the
// run's elements folded or appended in a single pass per key. Hash routing
// is run-aware too: a routed run is appended to each destination's staging
// buffer in contiguous slices under one lock acquisition. The contract is
// strict — batched execution must equal per-record execution applied in
// order — and checkpoint barriers always land between runs, so the toggle
// is purely physical: the logical plan, every emitted value and its order,
// and every checkpoint are identical with WithVectorizedKeyedOps on or
// off, and a snapshot taken under either mode restores under the other.
// WithVectorizedKeyedOps(false) is the keyed ablation baseline (stateless
// chains stay batched); BENCH_keyed.json records the measured win
// (`streamline-bench -keyed`) on a windowed aggregation and a combiner-off
// reduce.
//
// # Keyed state, checkpoints and rescaling
//
// Keyed operators (ReduceByKey, WindowAggregate, JoinWindow) keep their
// per-key state in key groups: each key maps to one of WithNumKeyGroups
// groups (default DefaultNumKeyGroups), hash edges route records to the
// subtask owning the key's group, and checkpoints store one blob per
// (operator, key group) rather than per subtask. At a checkpoint barrier an
// operator blocks only for a copy-on-write capture of its state;
// serialization runs asynchronously while processing continues, and the
// checkpoint completes when every capture has been persisted.
//
// Because key groups — not subtasks — are the unit of state, a job can be
// recovered at a different parallelism: the new subtasks simply load the
// groups of their new ranges. The rescaling recipe:
//
//	// First run: checkpoint to a durable backend at parallelism 2.
//	backend, _ := streamline.NewFileBackend("/var/lib/job/checkpoints")
//	env := streamline.New(streamline.WithParallelism(2),
//		streamline.WithCheckpointing(backend, time.Second))
//	buildPipeline(env)
//	env.Execute(ctx) // ... the process dies, or is stopped to rescale
//
//	// Recovery: rebuild the identical pipeline at parallelism 4 and
//	// resume from the latest readable on-disk snapshot.
//	backend, _ = streamline.NewFileBackend("/var/lib/job/checkpoints")
//	snap, ok, err := backend.Latest() // err surfaces skipped corrupt files
//	env = streamline.New(streamline.WithParallelism(4),
//		streamline.WithCheckpointing(backend, time.Second))
//	buildPipeline(env)
//	if ok {
//		env.ExecuteRestored(ctx, snap)
//	}
//
// Two constraints: WithNumKeyGroups is a plan constant (a snapshot restores
// only into a plan with the same value — pick it once, comfortably above
// the largest parallelism the job may ever need), and positional
// per-subtask state does not redistribute. File sources (JSONL, CSV, and a
// Hybrid over them) are exempt: their snapshots hold splits, not positions,
// so they restore at any source parallelism. Only non-splittable sources —
// generators, slices, channels — keep the "source parallelism stays pinned"
// rule; rescale the keyed stages through WithParallelism either way. Key
// grouping itself is purely physical: results are identical at every group
// count and parallelism.
//
// The smallest complete pipeline:
//
//	env := streamline.New(streamline.WithParallelism(2))
//	nums := streamline.From(env, "nums", streamline.Slice([]float64{1, 2, 3, 4}))
//	keyed := streamline.KeyBy(nums, "parity", func(v float64) uint64 { return uint64(v) % 2 })
//	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
//	out := streamline.Collect(sums, "out")
//	if err := env.Execute(context.Background()); err != nil { ... }
//	for _, k := range out.Records() { // []streamline.Keyed[float64]
//		fmt.Println(k.Key, k.Value)
//	}
//
// And the hybrid replay→live scenario (see examples/hybrid for the full
// program):
//
//	events := streamline.From(env, "events",
//		streamline.Hybrid(
//			streamline.JSONL[reading]("history.jsonl"), // data at rest
//			streamline.Channel(liveFeed),               // data in motion
//		),
//		streamline.WithTimestamps(func(r reading) int64 { return r.Ts }),
//	)
//
// The hybrid stage runs at the environment parallelism: the history splits
// replay across all subtasks, every subtask's handoff promises the
// stage-wide history maximum (ReadHandoff), and the live channel is shared
// afterwards. A bare Channel connector still hints parallelism 1 — see
// ParallelismHinter — because without a handoff floor an idle subtask would
// pin event time at -inf.
//
// # Distributed execution
//
// Env.ExecuteDistributed splits the same plan across WithWorkers worker
// processes plus this process, the coordinator, over loopback/LAN TCP (see
// internal/transport). Execution is SPMD: operator logic is closures and
// never crosses the wire, so every participant rebuilds the identical
// pipeline from code — via WithSelfSpawn (the coordinator re-executes its
// own binary), RunWorker (a caller-supplied builder), or RunRegisteredWorker
// (a RegisterPipeline registry keyed by WithPipelineRef) — and the
// coordinator ships only the structural plan, a fingerprint both sides
// verify, the placement map, peer addresses, and (on recovery) the restore
// snapshot. Exchange edges that cross participants carry the same pooled
// record batches as the in-process channels, framed over one TCP connection
// per channel so checkpoint-barrier alignment keeps its ordering guarantees;
// custom payload types must be registered on every participant with
// RegisterWireTypes.
//
// Placement is deterministic: sinks (and live sources whose data exists only
// in the coordinator process — Channel, Hybrid's live phase) are pinned to
// the coordinator, and everything else round-robins across the workers, so
// Collect results always land in the coordinating process. The coordinator
// also injects checkpoint barriers and assembles every participant's acks
// into the same global snapshots a single-process run writes — a distributed
// job checkpoints to the shared backend and restores via
// ExecuteDistributedRestored at ANY worker count, with keyed state and
// remaining scan splits redistributing exactly as under a parallelism
// rescale. A lost worker connection aborts the job cleanly; restart from the
// last snapshot to continue — or let supervision do it for you.
//
// # Fault tolerance and supervision
//
// Env.ExecuteSupervised closes the detect→recover loop the checkpoints make
// possible. The failure model: a peer is dead when its control connection
// drops, when a control send misses its write deadline, or when the stream
// is silent past the heartbeat timeout — both sides ping every WithHeartbeat
// interval, so the hung-but-open TCP connection (a partitioned or wedged
// peer) is detected too, not just the clean crash. On any failure the
// coordinator stops the epoch, reloads the newest completed checkpoint from
// the WithCheckpointing backend, and relaunches: under WithSelfSpawn it
// respawns the full worker complement; with external workers it re-places
// the dead worker's subtasks onto whoever redials within WithRejoinWindow
// (graceful degradation — restore works at any worker count, so the job
// continues on the survivors). External workers rejoin automatically when
// run with RunWorkerLoop / RunRegisteredWorkerLoop instead of the one-shot
// variants. Restarts are spaced by capped exponential backoff with jitter
// and bounded by WithSupervision's restart budget; when the budget is
// exhausted the last failure surfaces, wrapped. RestartStats reports the
// recovery trajectory — cause, detect and restore instants, and the
// detect→restored downtime (the MTTR the recover benchmark measures;
// BENCH_recover.json holds the committed trajectory). With zero workers the
// same loop supervises a single-process run: fail, reload, re-execute.
//
// Exactly-once output across restarts: Collect sinks checkpoint their
// collected count and roll back to it when the supervised run restores — the
// sink instance survives in the coordinator process, so replayed suffixes
// overwrite instead of duplicating. Persist sinks truncate their topic to
// the checkpointed high-water offset the same way. Both guarantees need a
// checkpoint to restore from: a failure before the first completed
// checkpoint restarts the job from scratch (equally exactly-once — the
// sinks clear). The fault-injection harness behind these guarantees lives
// in internal/chaos: connection drops, added latency, blackholed
// connections and partitions, plus a worker Killer, all exercised by the
// transport soak tests and `streamline-bench -recover`.
//
// Remaining single-process assumptions, by design: live in-motion sources
// feed the coordinator (workers scale the at-rest, keyed and windowed
// stages); each source stage's event-time clock is per-process (watermarks
// still merge correctly downstream); splits are partitioned statically
// across participants (split stealing stays process-local); and file scans
// plus FileBackend checkpoints assume a filesystem all participants can
// read. Single-machine multi-core jobs lose nothing: with zero workers
// ExecuteDistributed is exactly Execute.
package streamline
