package dataflow

import (
	"context"
	"math"
	gort "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/state"
)

// seqEvent is one observation of the capture operator: a data record's
// timestamp or a watermark value.
type seqEvent struct {
	kind Kind
	ts   int64
}

// seqCapture records the exact per-channel interleaving of data and
// watermarks it observes. The +inf close-out watermark is ignored (the
// runtime legitimately delivers it more than once at end of stream).
type seqCapture struct {
	Base
	mu  sync.Mutex
	seq []seqEvent
}

func (s *seqCapture) OnRecord(r Record, _ Collector) {
	s.mu.Lock()
	s.seq = append(s.seq, seqEvent{kind: KindData, ts: r.Ts})
	s.mu.Unlock()
}

func (s *seqCapture) OnWatermark(wm int64, _ Collector) {
	if wm == math.MaxInt64 {
		return
	}
	s.mu.Lock()
	s.seq = append(s.seq, seqEvent{kind: KindWatermark, ts: wm})
	s.mu.Unlock()
}

func (s *seqCapture) events() []seqEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]seqEvent{}, s.seq...)
}

// TestExchangeOrderingPreservedUnderBatching drives a single channel with
// interleaved data and watermarks through a real (unchained) exchange and
// asserts the downstream subtask observes the exact sender order at several
// batch sizes — including one far larger than the stream, where data can
// only arrive because control records flush the staging buffer first.
func TestExchangeOrderingPreservedUnderBatching(t *testing.T) {
	const n, every = 200, 10
	for _, bs := range []int{1, 2, 64, 100000} {
		g := NewGraph("order")
		g.BatchSize = bs
		g.FlushInterval = -1 // only size and control records may flush
		src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
			return &GenSource{N: n, WatermarkEvery: every, Gen: func(i int64) Record {
				return Data(i, 0, float64(i))
			}}
		})
		cap := &seqCapture{}
		// Rebalance prevents chaining: the capture runs behind a real exchange.
		g.AddOperator("cap", 1, func() Operator { return cap }, Edge{From: src, Part: Rebalance})
		run(t, g)

		var want []seqEvent
		for i := int64(0); i < n; i++ {
			want = append(want, seqEvent{kind: KindData, ts: i})
			if (i+1)%every == 0 {
				want = append(want, seqEvent{kind: KindWatermark, ts: i})
			}
		}
		got := cap.events()
		if len(got) != len(want) {
			t.Fatalf("batch=%d: observed %d events, want %d", bs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: event %d = %+v, want %+v", bs, i, got[i], want[i])
			}
		}
	}
}

// TestFlushIntervalBoundsLatency runs a slow unbounded source into a huge
// batch with cadence watermarks effectively disabled: the only way records
// can reach the sink is the periodic flusher. Without it the staging buffer
// would strand every record until the batch filled (never, here).
func TestFlushIntervalBoundsLatency(t *testing.T) {
	g := NewGraph("flush")
	g.BatchSize = 1 << 20
	g.FlushInterval = 5 * time.Millisecond
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &PacedSource{PerSec: 400, Inner: &GenSource{
			N: -1, WatermarkEvery: 1 << 40,
			Gen: func(i int64) Record { return Data(i, 0, float64(i)) },
		}}
	})
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: src, Part: Rebalance})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if err := NewJob(g).Run(ctx); err == nil {
		t.Fatalf("unbounded job finished without error?")
	}
	if got := len(sink.Records()); got == 0 {
		t.Fatalf("flusher shipped no records: staging buffer stranded the stream")
	}
}

// TestKillAndRecoverAcrossBatchSizes round-trips the checkpoint/recovery
// suite with batching enabled at several batch sizes, including mid-batch
// barrier interleavings (batch sizes 2 and 64 stage data around barriers;
// batch size 1 degenerates to the per-record exchange).
func TestKillAndRecoverAcrossBatchSizes(t *testing.T) {
	const n = 6000
	for _, bs := range []int{1, 2, 64} {
		refSink := &CollectSink{}
		ref := buildRecoveryGraph(n, 0, refSink)
		ref.BatchSize = bs
		run(t, ref)
		want := collectWindows(t, refSink)
		if len(want) == 0 {
			t.Fatalf("batch=%d: reference run produced no windows", bs)
		}

		backend := state.NewMemoryBackend(0)
		crashSink := &CollectSink{}
		g1 := buildRecoveryGraph(n, 10000, crashSink)
		g1.BatchSize = bs
		job1 := NewJob(g1, WithCheckpointing(backend, 25*time.Millisecond))
		ctx1, cancel1 := context.WithTimeout(context.Background(), 150*time.Millisecond)
		err := job1.Run(ctx1)
		cancel1()
		if err == nil {
			got := collectWindows(t, crashSink)
			assertWindowsEqual(t, got, want)
			continue // finished before the kill; results still exact
		}
		snap, ok, _ := backend.Latest()
		if !ok {
			continue // no checkpoint completed before the kill on this machine
		}
		g2 := buildRecoveryGraph(n, 0, crashSink)
		g2.BatchSize = bs
		job2 := NewJob(g2, WithRestore(snap), WithCheckpointing(backend, 25*time.Millisecond))
		ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
		if err := job2.Run(ctx2); err != nil {
			cancel2()
			t.Fatalf("batch=%d: recovery run failed: %v", bs, err)
		}
		cancel2()
		assertWindowsEqual(t, collectWindows(t, crashSink), want)
	}
}

// TestNoGoroutineLeakAfterCancelledCheckpointingJob cancels a checkpointing
// job mid-flight — coordinator collecting acks, sources paced, flushers
// ticking — and asserts every runtime goroutine (subtasks, flushers, the
// coordinator) unwinds. Late acks after cancellation must be tolerated, not
// waited on.
func TestNoGoroutineLeakAfterCancelledCheckpointingJob(t *testing.T) {
	before := gort.NumGoroutine()
	for i := 0; i < 3; i++ {
		g := NewGraph("leak")
		src := g.AddSource("src", 2, func(sub, par int) SourceFunc {
			return &PacedSource{PerSec: 5000, Inner: &GenSource{
				N: -1, WatermarkEvery: 16,
				Gen: func(i int64) Record { return Data(i, uint64(i%5), float64(1)) },
			}}
		})
		red := g.AddOperator("sum", 2, func() Operator {
			return &KeyedReduceOp{F: func(acc, v float64) float64 { return acc + v }}
		}, Edge{From: src, Part: HashPartition})
		sink := &CollectSink{}
		g.AddOperator("sink", 1, sink.Factory(), Edge{From: red, Part: Rebalance})
		job := NewJob(g, WithCheckpointing(state.NewMemoryBackend(0), 10*time.Millisecond))
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
		if err := job.Run(ctx); err == nil {
			cancel()
			t.Fatalf("unbounded job finished without error?")
		}
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := gort.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, gort.NumGoroutine(), buf[:gort.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
