// Package workloads provides the synthetic data generators standing in for
// the production streams of STREAMLINE's industrial partners. The paper
// motivates four applications — customer retention, personalized
// recommendations, target advertisement, and multilingual Web processing —
// and each has a generator here whose knobs (rate, key skew, session gaps,
// bounded disorder) control exactly the stream properties the experiments
// depend on.
//
// All generators are deterministic functions of (seed, index), which makes
// them replayable sources for exactly-once recovery and makes every
// experiment reproducible.
package workloads

import (
	"math"
	"math/rand"
)

// Event is one generated stream element.
type Event struct {
	// Ts is the event timestamp in milliseconds since stream start.
	Ts int64
	// Key identifies the entity (user, campaign, item...).
	Key uint64
	// Value is the measurement carried by the event.
	Value float64
	// Attr is an application-specific attribute (ad id, item id, ...).
	Attr uint64
}

// Uniform generates rate events per second with uniformly distributed keys.
type Uniform struct {
	Seed    int64
	Keys    int
	PerSec  int64
	ValMean float64
}

// At returns event i.
func (u Uniform) At(i int64) Event {
	rng := rand.New(rand.NewSource(u.Seed ^ i*0x5851F42D4C957F2D))
	perSec := u.PerSec
	if perSec <= 0 {
		perSec = 1000
	}
	keys := u.Keys
	if keys <= 0 {
		keys = 16
	}
	return Event{
		Ts:    i * 1000 / perSec,
		Key:   uint64(rng.Intn(keys)),
		Value: u.ValMean + rng.NormFloat64(),
	}
}

// Zipf generates rate events per second with Zipf-skewed keys (exponent s),
// the key-distribution knob of the optimizer experiment E10.
type Zipf struct {
	Seed   int64
	Keys   int
	PerSec int64
	S      float64 // skew exponent; s <= 1.0001 is treated as ~uniform

	zipf *rand.Zipf
	rng  *rand.Rand
}

// NewZipf returns a stateful Zipf generator (At must be called with
// ascending i; the underlying generator is consumed sequentially).
func NewZipf(seed int64, keys int, perSec int64, s float64) *Zipf {
	z := &Zipf{Seed: seed, Keys: keys, PerSec: perSec, S: s}
	z.rng = rand.New(rand.NewSource(seed))
	if s > 1.0001 {
		z.zipf = rand.NewZipf(z.rng, s, 1, uint64(keys-1))
	}
	return z
}

// At returns event i (sequential access).
func (z *Zipf) At(i int64) Event {
	var key uint64
	if z.zipf != nil {
		key = z.zipf.Uint64()
	} else {
		key = uint64(z.rng.Intn(z.Keys))
	}
	return Event{
		Ts:    i * 1000 / z.PerSec,
		Key:   key,
		Value: 1,
	}
}

// Disordered wraps a generator adding bounded timestamp disorder: each
// event's timestamp is shifted back by up to Bound ms, deterministically.
// Consumers must use a watermark lag >= Bound.
type Disordered struct {
	Inner func(i int64) Event
	Bound int64
	Seed  int64
}

// At returns event i with perturbed timestamp (never below zero).
func (d Disordered) At(i int64) Event {
	e := d.Inner(i)
	if d.Bound > 0 {
		rng := rand.New(rand.NewSource(d.Seed ^ i*0x7F4A7C15))
		e.Ts -= rng.Int63n(d.Bound + 1)
		if e.Ts < 0 {
			e.Ts = 0
		}
	}
	return e
}

// Sessions generates the customer-retention stream: users produce bursts of
// activity (sessions) separated by idle gaps; the churn signal is session
// length and inter-session gap growth. Deterministic per (seed, index).
type Sessions struct {
	Seed         int64
	Users        int
	PerSec       int64
	MeanSession  int64 // events per session
	GapMs        int64 // idle gap between sessions (per user, mean)
	SessionGapMs int64 // intra-session inter-event gap (mean)
}

// At returns event i: a user's activity event. The generator interleaves
// users round-robin, each progressing through its own session schedule.
func (s Sessions) At(i int64) Event {
	users := int64(s.Users)
	if users <= 0 {
		users = 100
	}
	user := i % users
	step := i / users // the user's own event counter
	rng := rand.New(rand.NewSource(s.Seed ^ user*31 ^ step*0x9E3779B9))
	mean := s.MeanSession
	if mean <= 0 {
		mean = 10
	}
	sessionIdx := step / mean
	within := step % mean
	gap := s.GapMs
	if gap <= 0 {
		gap = 30_000
	}
	intra := s.SessionGapMs
	if intra <= 0 {
		intra = 1000
	}
	// Session start: idx * (session duration + gap), jittered.
	start := sessionIdx * (mean*intra + gap)
	ts := start + within*intra + rng.Int63n(intra/2+1)
	// Engagement value: declines across sessions for half the users — the
	// churn cohort the retention example detects.
	val := 10.0
	if user%2 == 0 {
		val = math.Max(1, 10.0-float64(sessionIdx))
	}
	return Event{Ts: ts, Key: uint64(user), Value: val}
}

// AdClicks generates the target-advertisement stream: impressions and
// clicks for Zipf-skewed campaigns. Value is 1 for an impression; Attr is 1
// when the impression converted to a click (CTR ~ per-campaign base rate).
type AdClicks struct {
	Seed      int64
	Campaigns int
	PerSec    int64

	zipf *rand.Zipf
	rng  *rand.Rand
}

// NewAdClicks returns a stateful generator (sequential access).
func NewAdClicks(seed int64, campaigns int, perSec int64) *AdClicks {
	a := &AdClicks{Seed: seed, Campaigns: campaigns, PerSec: perSec}
	a.rng = rand.New(rand.NewSource(seed))
	a.zipf = rand.NewZipf(a.rng, 1.3, 1, uint64(campaigns-1))
	return a
}

// At returns event i (sequential access).
func (a *AdClicks) At(i int64) Event {
	campaign := a.zipf.Uint64()
	// Per-campaign click probability between 1% and ~11%.
	p := 0.01 + float64(campaign%17)/160.0
	click := uint64(0)
	if a.rng.Float64() < p {
		click = 1
	}
	return Event{
		Ts:    i * 1000 / a.PerSec,
		Key:   campaign,
		Value: 1,
		Attr:  click,
	}
}

// Ratings generates the recommendation stream: (user, item, rating)
// triples with popularity-skewed items.
type Ratings struct {
	Seed   int64
	Users  int
	Items  int
	PerSec int64

	zipf *rand.Zipf
	rng  *rand.Rand
}

// NewRatings returns a stateful generator (sequential access).
func NewRatings(seed int64, users, items int, perSec int64) *Ratings {
	r := &Ratings{Seed: seed, Users: users, Items: items, PerSec: perSec}
	r.rng = rand.New(rand.NewSource(seed))
	r.zipf = rand.NewZipf(r.rng, 1.2, 1, uint64(items-1))
	return r
}

// At returns event i: Key = user, Attr = item, Value = rating 1..5.
func (r *Ratings) At(i int64) Event {
	item := r.zipf.Uint64()
	user := uint64(r.rng.Intn(r.Users))
	// Ratings biased by item popularity (popular items rate higher).
	base := 3.0 + 2.0/(1.0+float64(item)/10.0)
	rating := math.Min(5, math.Max(1, base+r.rng.NormFloat64()*0.8))
	return Event{
		Ts:    i * 1000 / r.PerSec,
		Key:   user,
		Value: math.Round(rating),
		Attr:  item,
	}
}

// TimeSeries generates the I2 demo signal: a composite of slow and fast
// oscillations with noise and occasional spikes — visually interesting at
// any zoom level.
type TimeSeries struct {
	Seed   int64
	PerSec int64
}

// At returns sample i.
func (t TimeSeries) At(i int64) Event {
	perSec := t.PerSec
	if perSec <= 0 {
		perSec = 1000
	}
	ts := i * 1000 / perSec
	sec := float64(ts) / 1000.0
	rng := rand.New(rand.NewSource(t.Seed ^ i*0x2545F4914F6CDD1D))
	v := 10*math.Sin(2*math.Pi*sec/60) + 3*math.Sin(2*math.Pi*sec/2.5) + rng.NormFloat64()
	if rng.Float64() < 0.001 {
		v += 40 // spike
	}
	return Event{Ts: ts, Value: v}
}
