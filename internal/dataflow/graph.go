package dataflow

import (
	"fmt"
	"time"

	"repro/internal/state"
)

// Partitioning selects how data records route from an upstream subtask to
// the downstream subtasks of an edge. Watermarks, barriers and end markers
// are always broadcast, regardless of the data partitioning.
type Partitioning uint8

const (
	// Forward sends to the same subtask index (requires equal parallelism);
	// the optimizer chains forward edges into a single goroutine.
	Forward Partitioning = iota
	// HashPartition routes by key group: Hash64(record.Key) maps to a key
	// group (modulo Graph.NumKeyGroups) and the record goes to the subtask
	// owning that group's contiguous range — the same assignment keyed
	// state is partitioned by, so routing and state always agree.
	HashPartition
	// Rebalance distributes round-robin.
	Rebalance
	// BroadcastPartition sends every record to every subtask.
	BroadcastPartition
)

// String implements fmt.Stringer.
func (p Partitioning) String() string {
	switch p {
	case Forward:
		return "forward"
	case HashPartition:
		return "hash"
	case Rebalance:
		return "rebalance"
	case BroadcastPartition:
		return "broadcast"
	}
	return fmt.Sprintf("partitioning(%d)", uint8(p))
}

// OperatorFactory produces one Operator instance per subtask.
type OperatorFactory func() Operator

// SourceFactory produces one SourceFunc instance per subtask.
type SourceFactory func(subtask, parallelism int) SourceFunc

// Node is one vertex of the job graph.
type Node struct {
	ID          int
	Name        string
	Parallelism int

	// Exactly one of NewSource / NewOperator is set.
	NewSource   SourceFactory
	NewOperator OperatorFactory

	// In lists the incoming edges (empty for sources).
	In []Edge

	// Pinned forces this node's subtasks onto the coordinator participant
	// in distributed execution (terminal sinks whose results must land in
	// the submitting process set it). Ignored by single-process runs.
	Pinned bool

	// ChainedFrom, when set by the optimizer, fuses this node into its
	// single forward-connected upstream node's subtasks.
	chained bool
}

// Edge connects an upstream node to a downstream node.
type Edge struct {
	From *Node
	Part Partitioning
}

// Graph is a job DAG under construction.
type Graph struct {
	Name  string
	nodes []*Node
	// BufferSize is the per-channel backpressure budget in records.
	// Defaults to 128. Channels carry batches, so the physical capacity is
	// BufferSize/BatchSize batches (floor 4) — a bigger batch size does not
	// silently multiply how many records may queue ahead of a blocked
	// receiver.
	BufferSize int
	// BatchSize is the number of data records staged per exchange batch
	// before it is shipped downstream. <= 0 uses DefaultBatchSize; 1
	// degenerates to per-record exchange (the ablation baseline). A purely
	// physical knob: it never changes the logical plan or its results.
	BatchSize int
	// FlushInterval bounds how long a staged record may wait in an exchange
	// buffer before being shipped — the in-motion latency guard. 0 uses
	// DefaultFlushInterval; negative disables the periodic flusher (staged
	// records then ship only on full batches and control records).
	FlushInterval time.Duration
	// NumKeyGroups is the number of key groups — the logical plan's unit of
	// keyed-state partitioning and of hash routing (keys map to
	// Hash64(key) % NumKeyGroups, key groups map to subtasks by contiguous
	// range). A plan constant: checkpoints restore only into a graph with
	// the same value, at any parallelism. <= 0 uses DefaultNumKeyGroups.
	NumKeyGroups int
}

// DefaultNumKeyGroups is the key-group count of plans that do not choose
// one, re-exported from the state layer.
const DefaultNumKeyGroups = state.DefaultNumKeyGroups

// numKeyGroups returns the graph's normalized key-group count.
func (g *Graph) numKeyGroups() int {
	if g.NumKeyGroups <= 0 {
		return DefaultNumKeyGroups
	}
	return g.NumKeyGroups
}

// NewGraph returns an empty job graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, BufferSize: 128, BatchSize: DefaultBatchSize, FlushInterval: DefaultFlushInterval}
}

// Nodes returns the nodes in insertion (topological) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// AddSource adds a source node.
func (g *Graph) AddSource(name string, parallelism int, f SourceFactory) *Node {
	n := &Node{ID: len(g.nodes), Name: name, Parallelism: parallelism, NewSource: f}
	g.nodes = append(g.nodes, n)
	return n
}

// AddOperator adds an operator node reading from the given edges.
func (g *Graph) AddOperator(name string, parallelism int, f OperatorFactory, in ...Edge) *Node {
	n := &Node{ID: len(g.nodes), Name: name, Parallelism: parallelism, NewOperator: f, In: in}
	g.nodes = append(g.nodes, n)
	return n
}

// Validate checks structural invariants: sources have no inputs, operators
// have at least one, Forward edges connect equal parallelism, nodes are
// topologically ordered (edges only point backwards), and parallelism is
// positive.
func (g *Graph) Validate() error {
	for _, n := range g.nodes {
		if n.Parallelism <= 0 {
			return fmt.Errorf("dataflow: node %q: parallelism %d", n.Name, n.Parallelism)
		}
		switch {
		case n.NewSource != nil && n.NewOperator != nil:
			return fmt.Errorf("dataflow: node %q is both source and operator", n.Name)
		case n.NewSource == nil && n.NewOperator == nil:
			return fmt.Errorf("dataflow: node %q has neither source nor operator", n.Name)
		case n.NewSource != nil && len(n.In) > 0:
			return fmt.Errorf("dataflow: source %q has inputs", n.Name)
		case n.NewOperator != nil && len(n.In) == 0:
			return fmt.Errorf("dataflow: operator %q has no inputs", n.Name)
		}
		for _, e := range n.In {
			if e.From == nil {
				return fmt.Errorf("dataflow: node %q has nil upstream", n.Name)
			}
			if e.From.ID >= n.ID {
				return fmt.Errorf("dataflow: edge %q -> %q violates topological order (cycles are not supported)",
					e.From.Name, n.Name)
			}
			if e.Part == Forward && e.From.Parallelism != n.Parallelism {
				return fmt.Errorf("dataflow: forward edge %q(%d) -> %q(%d) requires equal parallelism",
					e.From.Name, e.From.Parallelism, n.Name, n.Parallelism)
			}
		}
	}
	return nil
}

// totalSubtasks counts subtasks across all nodes (chained nodes share their
// upstream's subtasks but still snapshot separately).
func (g *Graph) totalSubtasks() int {
	n := 0
	for _, node := range g.nodes {
		n += node.Parallelism
	}
	return n
}
