package dataflow

import (
	"math"
	"testing"

	"repro/internal/agg"
	"repro/internal/window"
)

func newWindowOp(t *testing.T, qs ...WindowQuery) *WindowOp {
	t.Helper()
	op := NewWindowOp(qs...)().(*WindowOp)
	if err := op.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	return op
}

func TestWindowOpLateElementsDropped(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(5, 1, 1.0), out)
	op.OnWatermark(20, out) // closes [0,10)
	// ts=7 is now late: the watermark passed it. It must not corrupt the
	// engine or resurrect the closed window.
	op.OnRecord(Data(7, 1, 100.0), out)
	op.OnWatermark(math.MaxInt64, out)
	if op.DroppedLate() != 1 {
		t.Fatalf("DroppedLate = %d, want 1", op.DroppedLate())
	}
	if len(out.recs) != 1 {
		t.Fatalf("got %d windows: %+v", len(out.recs), out.recs)
	}
	wr := out.recs[0].Value.(WindowResult)
	if wr.Value != 1 || wr.Start != 0 {
		t.Fatalf("window %+v, want [0,10) sum 1", wr)
	}
}

func TestWindowOpInOrderWithinWatermarkKept(t *testing.T) {
	// Elements between watermarks may arrive in any order; all with
	// ts > curWM must be kept and correctly ordered on release.
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.CountF64()})
	out := &collectList{}
	op.OnRecord(Data(9, 1, 1.0), out)
	op.OnRecord(Data(3, 1, 1.0), out) // out of order but not late
	op.OnRecord(Data(6, 1, 1.0), out)
	op.OnWatermark(10, out)
	if len(out.recs) != 1 {
		t.Fatalf("got %d windows", len(out.recs))
	}
	if wr := out.recs[0].Value.(WindowResult); wr.Count != 3 {
		t.Fatalf("count = %d, want 3", wr.Count)
	}
	if op.DroppedLate() != 0 {
		t.Fatalf("dropped %d in-time elements", op.DroppedLate())
	}
}

func TestWindowOpNonFloatValuesIgnored(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnRecord(Data(1, 1, "not a float"), out)
	op.OnRecord(Data(2, 1, 42), out) // int, not float64
	op.OnWatermark(math.MaxInt64, out)
	if len(out.recs) != 0 {
		t.Fatalf("non-float values produced windows: %+v", out.recs)
	}
}

func TestWindowOpSnapshotCarriesBufferAndLateCount(t *testing.T) {
	op := newWindowOp(t, WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})
	out := &collectList{}
	op.OnWatermark(5, out)
	op.OnRecord(Data(7, 2, 3.0), out) // buffered, not yet released
	blob, err := op.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewWindowOp(WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()})().(*WindowOp)
	if err := restored.Open(&OpContext{Restore: blob}); err != nil {
		t.Fatal(err)
	}
	restored.OnWatermark(math.MaxInt64, out)
	if len(out.recs) != 1 {
		t.Fatalf("restored op lost the buffered record: %+v", out.recs)
	}
	if wr := out.recs[0].Value.(WindowResult); wr.Value != 3 {
		t.Fatalf("window %+v", wr)
	}
}
