// Personalized recommendations — the second STREAMLINE application: a
// streaming item-popularity and per-user-mean model over a rating stream.
// The pipeline keeps (a) windowed item rating counts (trending items) and
// (b) per-user mean ratings via the keyed reduce with adaptive combining;
// the sink assembles "users who rate high get trending items" suggestions.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"

	"repro/internal/agg"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/window"
	"repro/internal/workloads"
)

func main() {
	const (
		users = 200
		items = 500
	)
	gen := workloads.NewRatings(41, users, items, 2000)

	env := core.NewEnvironment(core.WithParallelism(2))

	// Branch 1: trending items — tumbling 10s rating counts per item.
	ratings := env.FromGenerator("ratings", 1, 80_000, func(sub, par int, i int64) dataflow.Record {
		e := gen.At(i)
		// Re-key by item for popularity; stash the rating as the value.
		return dataflow.Data(e.Ts, e.Attr, e.Value)
	})
	trending := ratings.
		KeyBy("item", func(r dataflow.Record) uint64 { return r.Key }).
		WindowAggregate("popularity",
			core.WindowedQuery{Window: window.Tumbling(10_000), Fn: agg.CountF64()},
			core.WindowedQuery{Window: window.Tumbling(10_000), Fn: agg.AvgF64()},
		).
		Collect("trending")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	// Assemble the model from the window results.
	type itemStat struct {
		item  uint64
		count float64
		mean  float64
	}
	var mu sync.Mutex
	stats := map[uint64]*itemStat{}
	for _, r := range trending.Records() {
		wr := r.Value.(dataflow.WindowResult)
		mu.Lock()
		st := stats[r.Key]
		if st == nil {
			st = &itemStat{item: r.Key}
			stats[r.Key] = st
		}
		switch wr.QueryID {
		case 0:
			st.count += wr.Value
		case 1:
			st.mean = (st.mean + wr.Value) / 2
		}
		mu.Unlock()
	}
	list := make([]*itemStat, 0, len(stats))
	for _, st := range stats {
		list = append(list, st)
	}
	// Recommendation score: popularity damped by mediocre ratings.
	sort.Slice(list, func(i, j int) bool {
		si := list[i].count * list[i].mean
		sj := list[j].count * list[j].mean
		if si != sj {
			return si > sj
		}
		return list[i].item < list[j].item
	})
	fmt.Println("recommended items (popularity x mean rating):")
	for i, st := range list {
		if i >= 10 {
			break
		}
		fmt.Printf("  item %3d  ratings %5.0f  mean %.2f\n", st.item, st.count, st.mean)
	}
	fmt.Printf("catalogue coverage: %d/%d items rated\n", len(list), items)
}
