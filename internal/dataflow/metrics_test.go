package dataflow

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/metrics"
	"repro/internal/state"
	"repro/internal/window"
)

func TestJobMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGraph("metered")
	src := g.AddSource("src", 1, func(sub, par int) SourceFunc {
		return &GenSource{N: 500, WatermarkEvery: 10, Gen: func(i int64) Record {
			return Data(i, uint64(i%3), float64(1))
		}}
	})
	mid := g.AddOperator("mid", 1, func() Operator {
		return &MapOp{F: func(r Record) Record { return r }}
	}, Edge{From: src, Part: Rebalance}) // rebalance prevents chaining: mid is a head
	sink := &CollectSink{}
	g.AddOperator("sink", 1, sink.Factory(), Edge{From: mid, Part: Rebalance})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job := NewJob(g, WithMetrics(reg), WithCheckpointing(state.NewMemoryBackend(2), 10*time.Millisecond))
	if err := job.Run(ctx); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("node.src.records_in").Value(); got != 500 {
		t.Fatalf("source records_in = %d, want 500", got)
	}
	if got := reg.Counter("node.mid.records_in").Value(); got != 500 {
		t.Fatalf("mid records_in = %d, want 500", got)
	}
	if got := reg.Counter("node.sink.records_in").Value(); got != 500 {
		t.Fatalf("sink records_in = %d, want 500", got)
	}
	if wm := reg.Gauge("node.sink.watermark").Value(); wm <= 0 {
		t.Fatalf("sink watermark gauge = %d", wm)
	}
	if job.CompletedCheckpoints() > 0 {
		if reg.Counter("job.checkpoints").Value() != job.CompletedCheckpoints() {
			t.Fatalf("checkpoint counter mismatch")
		}
		if reg.Histogram("job.checkpoint_nanos").Count() == 0 {
			t.Fatalf("no checkpoint durations recorded")
		}
	}
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatalf("registry rendered empty")
	}
}

func TestJobWithoutMetricsIsNil(t *testing.T) {
	j := NewJob(NewGraph("x"))
	if j.nodeMetrics("any") != nil {
		t.Fatalf("nodeMetrics should be nil without a registry")
	}
}

// TestDroppedLateMetric runs a window job whose source emits records behind
// the watermark and asserts the per-node records_dropped_late counter
// surfaces them — the count used to be tracked on the operator but
// unobservable in a running job.
func TestDroppedLateMetric(t *testing.T) {
	reg := metrics.NewRegistry()
	g := NewGraph("late")
	src := g.AddSource("src", 1, SliceSource([]Record{
		Data(5, 1, 1.0),
		Watermark(20),   // closes everything at or below ts=20
		Data(7, 1, 1.0), // late
		Data(3, 2, 1.0), // late, different key
		Data(25, 1, 1.0),
	}))
	g.AddOperator("win", 1, NewWindowOp(
		WindowQuery{Spec: window.Tumbling(10), Fn: agg.SumF64()},
	), Edge{From: src, Part: HashPartition})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := NewJob(g, WithMetrics(reg)).Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("node.win.records_dropped_late").Value(); got != 2 {
		t.Fatalf("records_dropped_late = %d, want 2", got)
	}
}
