// Command streamline-coord runs a named demo pipeline as the coordinator
// of a distributed STREAMLINE job: it listens for -workers worker processes
// (cmd/streamline-worker), distributes the plan, injects checkpoint
// barriers, and prints the pipeline's deterministic output. With
// -workers 0 it runs the identical pipeline single-process — diffing the
// two outputs is the distribution smoke test.
//
//	streamline-coord -pipeline wordcount -workers 2 -listen 127.0.0.1:7171
//	streamline-coord -pipeline wordcount -workers 0
//
// With -supervise N the job is self-healing: periodic checkpoints go to
// -ckpt-dir, and on any worker failure the coordinator restores the newest
// one and relaunches — onto respawned or rejoining workers — up to N times.
// The recovery trajectory (detect→restored downtime per restart) prints to
// stderr.
//
//	streamline-coord -pipeline windowed -workers 2 -supervise 5 \
//	    -ckpt-dir /tmp/ckpt -ckpt-every 200ms -hb-interval 100ms -hb-timeout 1s
//
// Arguments after the flags are passed to the pipeline builder, e.g.
//
//	streamline-coord -pipeline windowed -workers 2 -- -events 12000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/pipelines"
	"repro/streamline"
)

func main() {
	pipeline := flag.String("pipeline", "wordcount", "registered pipeline to run")
	workers := flag.Int("workers", 0, "worker processes to wait for (0: single-process)")
	listen := flag.String("listen", "127.0.0.1:7171", "control listen address (with -workers > 0)")
	out := flag.String("out", "", "write results to this file (default: stdout)")
	supervise := flag.Int("supervise", 0, "restart budget for supervised self-healing runs (0: unsupervised)")
	ckptDir := flag.String("ckpt-dir", "", "durable checkpoint directory (required with -supervise)")
	ckptEvery := flag.Duration("ckpt-every", 200*time.Millisecond, "checkpoint interval (with -ckpt-dir)")
	hbInterval := flag.Duration("hb-interval", 0, "control-plane heartbeat interval (0: default 1s)")
	hbTimeout := flag.Duration("hb-timeout", 0, "declare a peer dead after this much control silence (0: default 4s)")
	rejoinWindow := flag.Duration("rejoin-window", 0, "how long a recovery waits for all workers to rejoin before degrading (0: default 3s)")
	flag.Parse()

	extra := []streamline.Option{streamline.WithWorkers(*workers)}
	if *workers > 0 {
		extra = append(extra, streamline.WithListenAddr(*listen))
	}
	if *supervise > 0 {
		extra = append(extra,
			streamline.WithSupervision(*supervise),
			streamline.WithHeartbeat(*hbInterval, *hbTimeout),
			streamline.WithRejoinWindow(*rejoinWindow))
		if *ckptDir == "" {
			log.Fatal("-supervise needs -ckpt-dir: recovery restores from the checkpoint backend")
		}
	}
	if *ckptDir != "" {
		backend, err := streamline.NewFileBackend(*ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		extra = append(extra, streamline.WithCheckpointing(backend, *ckptEvery))
	}
	env, render, err := pipelines.Build(*pipeline, flag.Args(), extra...)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if *supervise > 0 {
		err = env.ExecuteSupervised(ctx)
	} else {
		err = env.ExecuteDistributed(ctx)
	}
	for _, st := range env.RestartStats() {
		fmt.Fprintf(os.Stderr, "restart %d: %d workers, checkpoint %d, downtime %v (cause: %s)\n",
			st.Attempt, st.Workers, st.Checkpoint, st.Downtime.Round(time.Millisecond), st.Cause)
	}
	if err != nil {
		log.Fatal(err)
	}
	text := render()
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		log.Fatal(err)
	}
}
