package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/streamline"
)

// The exchange benchmark records the batched-exchange perf trajectory: the
// same two pipelines — a bounded slice wordcount (data at rest) and an
// unbounded channel pipeline drained to completion (data in motion) — run
// with per-record exchange (batch size 1) and with the default pooled
// batches, and the records/sec ratio is the measured win of vectorizing the
// data plane. Results are written to BENCH_exchange.json by
// `streamline-bench -exchange`.

// ExchangeRun is one (pipeline, batch size) measurement. The allocation
// columns (heap allocations and bytes per record, from runtime.MemStats
// deltas around the run) record the boxing/staging trajectory alongside
// throughput.
type ExchangeRun struct {
	Pipeline        string  `json:"pipeline"`
	BatchSize       int     `json:"batch_size"`
	Records         int64   `json:"records"`
	Seconds         float64 `json:"seconds"`
	RecordsPerSec   float64 `json:"records_per_sec"`
	AllocsPerRecord float64 `json:"allocs_per_record"`
	BytesPerRecord  float64 `json:"bytes_per_record"`
}

// ExchangeReport is the full suite: every run plus the default-vs-1 speedup
// per pipeline.
type ExchangeReport struct {
	DefaultBatchSize int                `json:"default_batch_size"`
	Runs             []ExchangeRun      `json:"runs"`
	Speedup          map[string]float64 `json:"speedup"`
}

// exchangeVocab is the word list the wordcount corpus cycles through.
var exchangeVocab = []string{
	"stream", "line", "data", "at", "rest", "in", "motion", "window",
	"watermark", "barrier", "batch", "exchange", "pipeline", "operator",
	"key", "shuffle", "record", "engine", "snapshot", "source",
}

// ExchangeWordcount runs the bounded wordcount: a slice of n words keyed by
// word, counted per key behind a hash shuffle. The combiner is disabled so
// every record crosses the exchange — the path under measurement.
func ExchangeWordcount(n int64, batchSize int) (ExchangeRun, error) {
	words := make([]string, n)
	for i := range words {
		words[i] = exchangeVocab[i%len(exchangeVocab)]
	}
	env := streamline.New(
		streamline.WithParallelism(2),
		streamline.WithCombiner(streamline.CombinerOff),
		streamline.WithBatchSize(batchSize),
	)
	src := streamline.From(env, "words", streamline.Slice(words),
		streamline.WithSourceParallelism(2))
	keyed := streamline.KeyByString(src, "word", func(w string) string { return w })
	ones := streamline.Map(keyed, "one", func(string) float64 { return 1 })
	counts := streamline.ReduceByKey(ones, "count", func(acc, v float64) float64 { return acc + v }, false)
	streamline.Sink(counts, "out", func(streamline.Keyed[float64]) {})
	start := time.Now()
	mallocs, bytes, err := memDelta(func() error { return env.Execute(context.Background()) })
	if err != nil {
		return ExchangeRun{}, fmt.Errorf("wordcount batch=%d: %w", batchSize, err)
	}
	el := time.Since(start).Seconds()
	return ExchangeRun{
		Pipeline: "wordcount", BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
		AllocsPerRecord: float64(mallocs) / float64(n),
		BytesPerRecord:  float64(bytes) / float64(n),
	}, nil
}

// ExchangeChannel runs the in-motion pipeline: two producer goroutines push
// n records into live channels, and the job merges the feeds (a rebalance
// exchange) into a keyed sum behind a hash shuffle until both close — every
// record crosses two subtask boundaries.
func ExchangeChannel(n int64, batchSize int) (ExchangeRun, error) {
	feed := func(count int64) chan streamline.Keyed[float64] {
		c := make(chan streamline.Keyed[float64], 4096)
		go func() {
			defer close(c)
			for i := int64(0); i < count; i++ {
				c <- streamline.Keyed[float64]{Ts: i, Key: uint64(i % 256), Value: 1}
			}
		}()
		return c
	}
	env := streamline.New(
		streamline.WithParallelism(2),
		streamline.WithCombiner(streamline.CombinerOff),
		streamline.WithBatchSize(batchSize),
	)
	a := streamline.From(env, "live-a", streamline.Channel(feed(n/2)))
	b := streamline.From(env, "live-b", streamline.Channel(feed(n-n/2)))
	merged := streamline.Union(a, "merge", b)
	keyed := streamline.KeyByRecord(merged, "key", func(k streamline.Keyed[float64]) uint64 { return k.Key })
	sums := streamline.ReduceByKey(keyed, "sum", func(acc, v float64) float64 { return acc + v }, false)
	streamline.Sink(sums, "out", func(streamline.Keyed[float64]) {})
	start := time.Now()
	mallocs, bytes, err := memDelta(func() error { return env.Execute(context.Background()) })
	if err != nil {
		return ExchangeRun{}, fmt.Errorf("channel batch=%d: %w", batchSize, err)
	}
	el := time.Since(start).Seconds()
	return ExchangeRun{
		Pipeline: "channel", BatchSize: batchSize, Records: n,
		Seconds: el, RecordsPerSec: float64(n) / el,
		AllocsPerRecord: float64(mallocs) / float64(n),
		BytesPerRecord:  float64(bytes) / float64(n),
	}, nil
}

// Exchange workload sizes, shared with the BenchmarkExchange harness so the
// CI smoke run measures exactly the quick-mode workload recorded in
// BENCH_exchange.json.
const (
	ExchangeWords      int64 = 600_000
	ExchangeLive       int64 = 400_000
	ExchangeQuickWords int64 = 150_000
	ExchangeQuickLive  int64 = 100_000
)

// Exchange runs the exchange benchmark suite: both pipelines at batch size 1
// and at the default batch size.
func Exchange(quick bool) (*ExchangeReport, error) {
	nWords, nLive := ExchangeWords, ExchangeLive
	if quick {
		nWords, nLive = ExchangeQuickWords, ExchangeQuickLive
	}
	rep := &ExchangeReport{
		DefaultBatchSize: streamline.DefaultBatchSize,
		Speedup:          map[string]float64{},
	}
	base := map[string]float64{}
	for _, bs := range []int{1, streamline.DefaultBatchSize} {
		wc, err := ExchangeWordcount(nWords, bs)
		if err != nil {
			return nil, err
		}
		live, err := ExchangeChannel(nLive, bs)
		if err != nil {
			return nil, err
		}
		for _, r := range []ExchangeRun{wc, live} {
			rep.Runs = append(rep.Runs, r)
			if bs == 1 {
				base[r.Pipeline] = r.RecordsPerSec
			} else if b := base[r.Pipeline]; b > 0 {
				rep.Speedup[r.Pipeline] = r.RecordsPerSec / b
			}
		}
	}
	return rep, nil
}

// Table renders the report in the experiment-table format.
func (r *ExchangeReport) Table() *Table {
	t := &Table{
		ID:     "EXCHANGE",
		Title:  "vectorized exchange: pooled record batches vs per-record hops",
		Claim:  "\"as fast as the hardware allows\" — batch the hottest path",
		Header: []string{"pipeline", "batch size", "records", "runtime", "throughput", "allocs/rec", "bytes/rec"},
	}
	for _, run := range r.Runs {
		t.Add(run.Pipeline, fmt.Sprintf("%d", run.BatchSize), fmtCount(float64(run.Records)),
			fmt.Sprintf("%.3fs", run.Seconds), fmtRate(run.RecordsPerSec),
			fmt.Sprintf("%.2f", run.AllocsPerRecord), fmt.Sprintf("%.1f", run.BytesPerRecord))
	}
	for name, s := range r.Speedup {
		t.Note("%s: %.2fx records/sec at batch size %d over batch size 1", name, s, r.DefaultBatchSize)
	}
	return t
}

// WriteJSON records the report (the perf trajectory file BENCH_exchange.json).
func (r *ExchangeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
