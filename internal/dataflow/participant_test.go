package dataflow

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/state"
)

// runParticipants executes graphs[i] as participant i (0 = coordinator) over
// a shared in-process ChanTransport, with a miniature checkpoint driver
// standing in for the real distributed coordinator: trigger all sources,
// assemble every subtask's ack into one snapshot, persist. Each participant
// needs its own Graph instance (operator factories and sinks are per-job),
// all built identically — the SPMD contract. partCtx, when non-nil, supplies
// a private context for one participant (the kill tests cancel it).
func runParticipants(ctx context.Context, graphs []*Graph, backend state.Backend, interval time.Duration, restore *state.Snapshot, partCtx func(i int) context.Context) []error {
	workers := len(graphs) - 1
	placement := ComputePlacement(graphs[0], true, workers)
	tr := NewChanTransport()
	acks := make(chan Ack, 256)
	triggers := make([]chan int64, len(graphs))
	errs := make([]error, len(graphs))
	running := make(chan struct{}, len(graphs))

	cctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	var wg sync.WaitGroup
	for i := range graphs {
		triggers[i] = make(chan int64, 4)
		opts := []JobOption{WithChaining(true)}
		if restore != nil {
			opts = append(opts, WithRestore(restore))
		}
		jb := NewJob(graphs[i], opts...)
		wg.Add(1)
		go func(i int, jb *Job) {
			defer wg.Done()
			pctx := cctx
			if partCtx != nil {
				if c := partCtx(i); c != nil {
					pctx = c
				}
			}
			errs[i] = jb.RunParticipant(pctx, &Participation{
				Self:      i,
				Placement: placement,
				Transport: tr,
				Triggers:  triggers[i],
				Acks:      acks,
				OnRunning: func() { running <- struct{}{} },
			})
			if errs[i] != nil {
				// Any participant failing aborts the whole job, exactly as
				// the real coordinator treats a lost worker.
				cancelAll()
			}
		}(i, jb)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	if backend != nil && interval > 0 {
		go func() {
			for n := 0; n < len(graphs); n++ {
				select {
				case <-running:
				case <-done:
					return
				case <-cctx.Done():
					return
				}
			}
			needAcks := graphs[0].TotalSubtasks()
			var nextID int64 = 1
			if restore != nil {
				nextID = restore.CheckpointID + 1
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
				case <-done:
					return
				case <-cctx.Done():
					return
				}
				id := nextID
				nextID++
				snap := state.NewSnapshot(id)
				snap.NumKeyGroups = graphs[0].KeyGroups()
				for i := range triggers {
					select {
					case triggers[i] <- id:
					case <-done:
						return
					case <-cctx.Done():
						return
					}
				}
				got := 0
				for got < needAcks {
					select {
					case a := <-acks:
						if a.Ckpt != id {
							continue
						}
						snap.Put(a.Key, a.Blob)
						for kg, blob := range a.Groups {
							snap.PutGroup(state.GroupKey{OperatorID: a.Key.OperatorID, KeyGroup: kg}, blob)
						}
						got++
					case <-done:
						return
					case <-cctx.Done():
						return
					}
				}
				backend.Persist(snap)
			}
		}()
	}
	<-done
	return errs
}

// pinSink marks the named node pinned so placement keeps it on the
// coordinator participant — what core's sink constructors do automatically.
func pinSink(g *Graph, name string) {
	for _, n := range g.Nodes() {
		if n.Name == name {
			n.Pinned = true
		}
	}
}

// TestParticipantsMatchSingleProcess splits the recovery pipeline across a
// coordinator and two workers over the in-process transport and requires
// results identical to the single-job run — distribution must be purely
// physical.
func TestParticipantsMatchSingleProcess(t *testing.T) {
	const n = 6000
	refSink := &CollectSink{}
	run(t, buildRecoveryGraph(n, 0, refSink))
	want := collectWindows(t, refSink)
	if len(want) == 0 {
		t.Fatalf("reference run produced no windows")
	}

	distSink := &CollectSink{}
	graphs := make([]*Graph, 3)
	for i := range graphs {
		sink := &CollectSink{}
		if i == 0 {
			sink = distSink
		}
		graphs[i] = buildRecoveryGraph(n, 0, sink)
		pinSink(graphs[i], "sink")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, err := range runParticipants(ctx, graphs, nil, 0, nil, nil) {
		if err != nil {
			t.Fatalf("participant %d failed: %v", i, err)
		}
	}
	got := collectWindows(t, distSink)
	if len(got) != len(want) {
		t.Fatalf("distributed run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v", k, got[k], v)
		}
	}
}

// TestParticipantRescaleRecovery kills one worker participant of a
// checkpointing three-participant run and restores the snapshot into a
// four-participant job whose keyed operator also rescaled 2 -> 3 — keyed
// state redistributes by key group across both the new parallelism and the
// new worker count, preserving exactly-once window sums.
func TestParticipantRescaleRecovery(t *testing.T) {
	const n = 6000
	refSink := &CollectSink{}
	run(t, buildRecoveryGraph(n, 0, refSink))
	want := collectWindows(t, refSink)

	backend := state.NewMemoryBackend(0)
	crashSink := &CollectSink{}
	crashGraphs := make([]*Graph, 3)
	for i := range crashGraphs {
		sink := &CollectSink{}
		if i == 0 {
			sink = crashSink
		}
		crashGraphs[i] = buildRecoveryGraphAt(n, 10_000, sink, 2)
		pinSink(crashGraphs[i], "sink")
	}
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	// Kill worker 2 as soon as the first checkpoint lands.
	go func() {
		for {
			if _, ok, _ := backend.Latest(); ok {
				killVictim()
				return
			}
			select {
			case <-victimCtx.Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	errs := runParticipants(ctx, crashGraphs, backend, 15*time.Millisecond, nil, func(i int) context.Context {
		if i == 2 {
			return victimCtx
		}
		return nil
	})
	snap, ok, _ := backend.Latest()
	if !ok {
		t.Skip("no checkpoint completed before the kill on this machine")
	}
	failed := false
	for _, err := range errs {
		failed = failed || err != nil
	}
	if !failed {
		t.Skip("job finished before the kill on this machine")
	}

	resumeSink := &CollectSink{}
	resumeGraphs := make([]*Graph, 4)
	for i := range resumeGraphs {
		sink := &CollectSink{}
		if i == 0 {
			sink = resumeSink
		}
		resumeGraphs[i] = buildRecoveryGraphAt(n, 0, sink, 3)
		pinSink(resumeGraphs[i], "sink")
	}
	for i, err := range runParticipants(ctx, resumeGraphs, nil, 0, snap, nil) {
		if err != nil {
			t.Fatalf("restored participant %d failed: %v", i, err)
		}
	}
	got := collectWindows(t, crashSink)
	for k, v := range collectWindows(t, resumeSink) {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("restored run produced %d windows, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("window %+v = %v, want %v (exactly-once across the rescaled restore)", k, got[k], v)
		}
	}
}
