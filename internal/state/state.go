// Package state implements STREAMLINE's keyed-state and snapshot layer.
//
// # Key groups
//
// The physical unit of keyed state is the key group: every key maps to
// Hash64(key) % NumKeyGroups (a constant of the logical plan, default
// DefaultNumKeyGroups), and key groups map onto operator subtasks by
// contiguous range (GroupRangeFor / SubtaskForGroup). Hash-partitioned
// edges route records with the same functions, so the subtask that receives
// a key is always the subtask that owns its state. Because snapshots store
// one blob per (operator, key group) — not per subtask — a checkpoint taken
// at one parallelism restores at any other: the new subtasks simply load
// the groups of their new ranges.
//
// # KeyedState and asynchronous snapshots
//
// Operators keep their per-key state in a KeyedState: named, typed cells
// (MapCell for per-key values, GroupCell for per-group scalars) registered
// in Open. At a checkpoint barrier the runtime takes a copy-on-write
// Capture — flag flips and scalar copies, no serialization — and encodes
// the view into group blobs on a separate goroutine while the operator
// keeps processing; a mutation that would touch captured data clones it
// first (the cell API's GetMut discipline). This is the "asynchronous
// phase" of asynchronous barrier snapshotting: the barrier path blocks only
// for the capture, and the checkpoint completes when every subtask's
// serialization lands.
//
// # Backends
//
// A Backend persists completed snapshots — a consistent bundle of
// per-subtask blobs (sources, non-keyed operator state) and per-key-group
// blobs (keyed state) — either in memory (tests, benches) or on disk (gob
// files), and serves the most recent readable one for recovery.
package state

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// SubtaskKey identifies one operator subtask's state within a snapshot —
// used for state that is physically tied to a subtask (source positions,
// unkeyed operator scalars) and therefore cannot be redistributed.
type SubtaskKey struct {
	OperatorID int
	Subtask    int
}

// String renders the key as "op/subtask".
func (k SubtaskKey) String() string { return fmt.Sprintf("%d/%d", k.OperatorID, k.Subtask) }

// GroupKey identifies one operator's key group within a snapshot — the unit
// of rescalable keyed state.
type GroupKey struct {
	OperatorID int
	KeyGroup   int
}

// String renders the key as "op@group".
func (k GroupKey) String() string { return fmt.Sprintf("%d@%d", k.OperatorID, k.KeyGroup) }

// Snapshot is a completed checkpoint: every subtask's non-keyed state blob
// plus every keyed operator's per-key-group blobs.
type Snapshot struct {
	CheckpointID int64
	// NumKeyGroups records the plan constant the Groups entries were
	// written under; a restoring job must be built with the same value.
	NumKeyGroups int
	Entries      map[SubtaskKey][]byte
	Groups       map[GroupKey][]byte
}

// NewSnapshot returns an empty snapshot for the given checkpoint id.
func NewSnapshot(id int64) *Snapshot {
	return &Snapshot{
		CheckpointID: id,
		Entries:      make(map[SubtaskKey][]byte),
		Groups:       make(map[GroupKey][]byte),
	}
}

// Put stores one subtask's non-keyed state blob.
func (s *Snapshot) Put(k SubtaskKey, blob []byte) { s.Entries[k] = blob }

// Get returns one subtask's non-keyed state blob, or nil if absent.
func (s *Snapshot) Get(k SubtaskKey) []byte { return s.Entries[k] }

// EntriesOf collects one operator's per-subtask blobs keyed by subtask index
// — the restore path of sources whose state redistributes across a different
// parallelism (splittable scans) and therefore needs every subtask's blob.
func (s *Snapshot) EntriesOf(operatorID int) map[int][]byte {
	var out map[int][]byte
	for k, b := range s.Entries {
		if k.OperatorID != operatorID {
			continue
		}
		if out == nil {
			out = make(map[int][]byte)
		}
		out[k.Subtask] = b
	}
	return out
}

// PutGroup stores one key group's state blob.
func (s *Snapshot) PutGroup(k GroupKey, blob []byte) {
	if s.Groups == nil {
		s.Groups = make(map[GroupKey][]byte)
	}
	s.Groups[k] = blob
}

// GetGroup returns one key group's state blob, or nil if absent.
func (s *Snapshot) GetGroup(k GroupKey) []byte { return s.Groups[k] }

// GroupsOf collects an operator's blobs for the key-group range [start, end)
// — the restore path's redistribution: the ranges are the *new* job's, the
// blobs whatever subtasks wrote them. Returns nil when the range holds no
// state.
func (s *Snapshot) GroupsOf(operatorID, start, end int) map[int][]byte {
	var out map[int][]byte
	for g := start; g < end; g++ {
		if blob := s.Groups[GroupKey{OperatorID: operatorID, KeyGroup: g}]; blob != nil {
			if out == nil {
				out = make(map[int][]byte)
			}
			out[g] = blob
		}
	}
	return out
}

// Backend persists completed snapshots and serves the latest one for
// recovery.
type Backend interface {
	// Persist durably stores a completed snapshot. Later snapshots must
	// have larger checkpoint ids.
	Persist(snap *Snapshot) error
	// Latest returns the most recent *readable* persisted snapshot, or
	// ok=false if none exists. A durable backend that finds corrupt
	// snapshot data skips backward to the newest readable snapshot and
	// surfaces the corruption through err — possibly alongside ok=true, so
	// recovery can proceed from an older checkpoint while the operator
	// learns state was lost.
	Latest() (snap *Snapshot, ok bool, err error)
	// Load returns the snapshot with the given checkpoint id.
	Load(checkpointID int64) (*Snapshot, error)
}

// MemoryBackend keeps snapshots in memory; safe for concurrent use.
type MemoryBackend struct {
	mu    sync.Mutex
	snaps map[int64]*Snapshot
	ids   []int64
	// Retain limits how many snapshots are kept (0 = unlimited).
	Retain int
}

// NewMemoryBackend returns an empty in-memory backend retaining the last
// `retain` snapshots (0 = all).
func NewMemoryBackend(retain int) *MemoryBackend {
	return &MemoryBackend{snaps: make(map[int64]*Snapshot), Retain: retain}
}

// Persist implements Backend.
func (m *MemoryBackend) Persist(snap *Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.snaps[snap.CheckpointID]; dup {
		return fmt.Errorf("state: checkpoint %d already persisted", snap.CheckpointID)
	}
	m.snaps[snap.CheckpointID] = snap
	m.ids = append(m.ids, snap.CheckpointID)
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	if m.Retain > 0 {
		for len(m.ids) > m.Retain {
			delete(m.snaps, m.ids[0])
			m.ids = m.ids[1:]
		}
	}
	return nil
}

// Latest implements Backend.
func (m *MemoryBackend) Latest() (*Snapshot, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.ids) == 0 {
		return nil, false, nil
	}
	return m.snaps[m.ids[len(m.ids)-1]], true, nil
}

// Load implements Backend.
func (m *MemoryBackend) Load(id int64) (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.snaps[id]
	if !ok {
		return nil, fmt.Errorf("state: checkpoint %d not found", id)
	}
	return s, nil
}

// FileBackend persists each snapshot as a gob file in a directory.
type FileBackend struct {
	dir string
	mu  sync.Mutex
}

// NewFileBackend returns a backend writing to dir, creating it if needed.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: create dir: %w", err)
	}
	return &FileBackend{dir: dir}, nil
}

type fileSnapshot struct {
	CheckpointID int64
	NumKeyGroups int
	Keys         []SubtaskKey
	Blobs        [][]byte
	GroupKeys    []GroupKey
	GroupBlobs   [][]byte
}

func (f *FileBackend) path(id int64) string {
	return filepath.Join(f.dir, fmt.Sprintf("chk-%012d.gob", id))
}

// Persist implements Backend.
func (f *FileBackend) Persist(snap *Snapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	fs := fileSnapshot{CheckpointID: snap.CheckpointID, NumKeyGroups: snap.NumKeyGroups}
	for k, b := range snap.Entries {
		fs.Keys = append(fs.Keys, k)
		fs.Blobs = append(fs.Blobs, b)
	}
	for k, b := range snap.Groups {
		fs.GroupKeys = append(fs.GroupKeys, k)
		fs.GroupBlobs = append(fs.GroupBlobs, b)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fs); err != nil {
		return fmt.Errorf("state: encode checkpoint %d: %w", snap.CheckpointID, err)
	}
	tmp := f.path(snap.CheckpointID) + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path(snap.CheckpointID))
}

// Latest implements Backend: it walks the snapshot files newest-first and
// returns the first one that reads and decodes cleanly. Corrupt newer files
// are skipped — recovery falls back to the most recent *readable*
// checkpoint instead of silently restarting from scratch — and the
// corruption is surfaced through the error alongside the result.
func (f *FileBackend) Latest() (*Snapshot, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	matches, err := filepath.Glob(filepath.Join(f.dir, "chk-*.gob"))
	if err != nil || len(matches) == 0 {
		return nil, false, err
	}
	sort.Strings(matches)
	var corrupt []error
	for i := len(matches) - 1; i >= 0; i-- {
		snap, err := f.read(matches[i])
		if err != nil {
			corrupt = append(corrupt, err)
			continue
		}
		return snap, true, errors.Join(corrupt...)
	}
	return nil, false, fmt.Errorf("state: no readable snapshot in %s: %w", f.dir, errors.Join(corrupt...))
}

// Load implements Backend.
func (f *FileBackend) Load(id int64) (*Snapshot, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.read(f.path(id))
}

func (f *FileBackend) read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("state: read %s: %w", path, err)
	}
	var fs fileSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&fs); err != nil {
		return nil, fmt.Errorf("state: decode %s: %w", path, err)
	}
	snap := NewSnapshot(fs.CheckpointID)
	snap.NumKeyGroups = fs.NumKeyGroups
	for i, k := range fs.Keys {
		snap.Put(k, fs.Blobs[i])
	}
	for i, k := range fs.GroupKeys {
		snap.PutGroup(k, fs.GroupBlobs[i])
	}
	return snap, nil
}
