package state

import (
	"testing"
)

func newTestState(t *testing.T, numGroups, parallelism, subtask int) (*KeyedState, *MapCell[float64]) {
	t.Helper()
	start, end := GroupRangeFor(numGroups, parallelism, subtask)
	ks := NewKeyedState(numGroups, start, end)
	return ks, RegisterMap(ks, "acc", GobCodec[float64]())
}

func TestMapCellBasics(t *testing.T) {
	_, cell := newTestState(t, 8, 1, 0)
	if _, ok := cell.Get(1); ok {
		t.Fatalf("empty cell reported a value")
	}
	cell.Put(1, 10)
	cell.Put(2, 20)
	cell.Put(1, 11)
	if v, ok := cell.Get(1); !ok || v != 11 {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	if cell.Len() != 2 {
		t.Fatalf("Len = %d", cell.Len())
	}
	cell.Delete(1)
	if _, ok := cell.Get(1); ok {
		t.Fatalf("deleted key still present")
	}
	keys := cell.SortedKeys()
	if len(keys) != 1 || keys[0] != 2 {
		t.Fatalf("SortedKeys = %v", keys)
	}
}

func TestKeyOutsideOwnedRangePanics(t *testing.T) {
	// Parallelism 2, subtask 0 owns only the first half of the groups;
	// find a key owned by subtask 1 and write to it.
	ks, cell := newTestState(t, 8, 2, 0)
	var foreign uint64
	for k := uint64(0); ; k++ {
		if g := KeyGroupFor(k, 8); g < ks.start || g >= ks.end {
			foreign = k
			break
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("write to un-owned key group did not panic")
		}
	}()
	cell.Put(foreign, 1)
}

// TestCaptureIsImmutable is the copy-on-write contract: mutations after a
// capture must not leak into what the capture serializes.
func TestCaptureIsImmutable(t *testing.T) {
	ks, cell := newTestState(t, 4, 1, 0)
	cell.Put(1, 10)
	cell.Put(2, 20)

	captured := ks.Capture()
	cell.Put(1, 999) // mutate while the capture is outstanding
	cell.Delete(2)
	cell.Put(3, 30)
	blobs, err := captured.EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 4 {
		t.Fatalf("captured %d groups, want 4", len(blobs))
	}

	// Restore the capture into a fresh state: it must hold the pre-mutation
	// values.
	ks2, cell2 := newTestState(t, 4, 1, 0)
	for g, blob := range blobs {
		if err := ks2.RestoreGroup(g, blob); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := cell2.Get(1); v != 10 {
		t.Fatalf("capture leaked a post-capture write: key 1 = %v, want 10", v)
	}
	if _, ok := cell2.Get(2); !ok {
		t.Fatalf("capture lost key 2 after live delete")
	}
	if _, ok := cell2.Get(3); ok {
		t.Fatalf("capture contains a post-capture insert")
	}
	// The live cell meanwhile has the new values.
	if v, _ := cell.Get(1); v != 999 {
		t.Fatalf("live value = %v, want 999", v)
	}
}

// TestCaptureCloneOnMutableValues: values with a Clone codec are deep-copied
// before in-place mutation while a capture is in flight, and shared (no
// clone) once it has been released.
func TestCaptureCloneOnMutableValues(t *testing.T) {
	ks := NewKeyedState(2, 0, 2)
	cell := RegisterMap(ks, "buf", SliceCodec[int]())
	cell.Put(1, []int{1, 2, 3})

	captured := ks.Capture()
	shared, _ := cell.Get(1)
	mut, _ := cell.GetMut(1)
	mut[0] = 99 // in-place mutation of the clone
	if shared[0] != 1 {
		t.Fatalf("GetMut did not clone while a capture was in flight")
	}
	// Second GetMut within the same capture window reuses the private copy.
	mut2, _ := cell.GetMut(1)
	if &mut2[0] != &mut[0] {
		t.Fatalf("value cloned twice within one capture window")
	}
	if _, err := captured.EncodeGroups(); err != nil {
		t.Fatal(err)
	}

	// Capture released: in-place mutation no longer clones.
	before, _ := cell.GetMut(1)
	after, _ := cell.GetMut(1)
	if &before[0] != &after[0] {
		t.Fatalf("value cloned after the capture was released")
	}
}

func TestPerGroupCellRoundTrip(t *testing.T) {
	ks := NewKeyedState(4, 0, 4)
	wm := RegisterPerGroup(ks, "wm", int64(-1), GobCodec[int64]())
	if got := wm.Get(7); got != -1 {
		t.Fatalf("init = %d", got)
	}
	wm.SetAll(42)
	blobs, err := ks.Capture().EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}
	ks2 := NewKeyedState(4, 0, 4)
	wm2 := RegisterPerGroup(ks2, "wm", int64(-1), GobCodec[int64]())
	for g, blob := range blobs {
		if err := ks2.RestoreGroup(g, blob); err != nil {
			t.Fatal(err)
		}
	}
	if got := wm2.Get(7); got != 42 {
		t.Fatalf("restored per-group scalar = %d, want 42", got)
	}
}

// TestRescaleRedistribution captures at parallelism 2 and restores at 1 and
// at 3: every key must land in exactly one new subtask's state, with its
// captured value.
func TestRescaleRedistribution(t *testing.T) {
	const numGroups = 8
	want := map[uint64]float64{}
	blobs := map[int][]byte{}
	for s := 0; s < 2; s++ {
		start, end := GroupRangeFor(numGroups, 2, s)
		ks := NewKeyedState(numGroups, start, end)
		cell := RegisterMap(ks, "acc", GobCodec[float64]())
		for k := uint64(0); k < 200; k++ {
			if g := KeyGroupFor(k, numGroups); g >= start && g < end {
				cell.Put(k, float64(k)*2)
				want[k] = float64(k) * 2
			}
		}
		got, err := ks.Capture().EncodeGroups()
		if err != nil {
			t.Fatal(err)
		}
		for g, b := range got {
			blobs[g] = b
		}
	}
	if len(blobs) != numGroups {
		t.Fatalf("captured %d groups, want %d", len(blobs), numGroups)
	}

	for _, newPar := range []int{1, 3} {
		seen := map[uint64]float64{}
		for s := 0; s < newPar; s++ {
			start, end := GroupRangeFor(numGroups, newPar, s)
			ks := NewKeyedState(numGroups, start, end)
			cell := RegisterMap(ks, "acc", GobCodec[float64]())
			for g := start; g < end; g++ {
				if err := ks.RestoreGroup(g, blobs[g]); err != nil {
					t.Fatal(err)
				}
			}
			cell.Range(func(k uint64, v float64) bool {
				if _, dup := seen[k]; dup {
					t.Fatalf("restore at parallelism %d duplicated key %d", newPar, k)
				}
				seen[k] = v
				return true
			})
		}
		if len(seen) != len(want) {
			t.Fatalf("restore at parallelism %d: %d keys, want %d", newPar, len(seen), len(want))
		}
		for k, v := range want {
			if seen[k] != v {
				t.Fatalf("restore at parallelism %d: key %d = %v, want %v", newPar, k, seen[k], v)
			}
		}
	}
}

func TestRestoreRejectsCellMismatch(t *testing.T) {
	ks := NewKeyedState(2, 0, 2)
	RegisterMap(ks, "acc", GobCodec[float64]())
	blobs, err := ks.Capture().EncodeGroups()
	if err != nil {
		t.Fatal(err)
	}
	ks2 := NewKeyedState(2, 0, 2)
	RegisterMap(ks2, "other", GobCodec[float64]())
	if err := ks2.RestoreGroup(0, blobs[0]); err == nil {
		t.Fatalf("restore with renamed cell must fail")
	}
	ks3 := NewKeyedState(2, 0, 1)
	RegisterMap(ks3, "acc", GobCodec[float64]())
	if err := ks3.RestoreGroup(1, blobs[1]); err == nil {
		t.Fatalf("restore of un-owned group must fail")
	}
}

func TestGroupBlobsAreDeterministic(t *testing.T) {
	build := func() *Captured {
		ks := NewKeyedState(1, 0, 1)
		cell := RegisterMap(ks, "acc", GobCodec[float64]())
		// Insertion order differs; blobs must not.
		for _, k := range []uint64{5, 1, 9, 3} {
			cell.Put(k, float64(k))
		}
		return ks.Capture()
	}
	a, err := build().EncodeGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().EncodeGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("group blob depends on insertion order")
	}
}

// TestPutAliasedValueDoesNotGrantPrivacy is the regression test for a
// capture-corruption bug: a value stored with Put may alias captured
// memory (an appended slice sharing its backing array with the captured
// header), so Put must not mark the key private — the next GetMut has to
// clone before in-place mutation reaches the shared array.
func TestPutAliasedValueDoesNotGrantPrivacy(t *testing.T) {
	ks := NewKeyedState(1, 0, 1)
	cell := RegisterMap(ks, "buf", SliceCodec[int]())
	s := make([]int, 1, 4)
	s[0] = 30
	cell.Put(1, s)

	captured := ks.Capture()
	v, _ := cell.Get(1)
	cell.Put(1, append(v, 7)) // extends the captured backing array in place
	mut, _ := cell.GetMut(1)
	mut[0] = 999 // must hit a clone, not the captured array
	blob, err := captured.EncodeGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	captured.Release()

	ks2 := NewKeyedState(1, 0, 1)
	cell2 := RegisterMap(ks2, "buf", SliceCodec[int]())
	if err := ks2.RestoreGroup(0, blob); err != nil {
		t.Fatal(err)
	}
	got, _ := cell2.Get(1)
	if len(got) != 1 || got[0] != 30 {
		t.Fatalf("capture corrupted by aliased Put: restored %v, want [30]", got)
	}
}
