package dataflow

import "testing"

// CollectSink checkpoints its collected count and rolls back to it on Open —
// the supervised-restart contract that keeps in-process output exactly-once
// across epoch replays.
func TestCollectSinkRollsBackToCheckpointedCount(t *testing.T) {
	s := &CollectSink{}
	for i := 0; i < 5; i++ {
		s.OnRecord(Record{Kind: KindData, Ts: int64(i)}, nil)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// The failed epoch collected three more records past the checkpoint;
	// restoring must discard exactly those.
	for i := 5; i < 8; i++ {
		s.OnRecord(Record{Kind: KindData, Ts: int64(i)}, nil)
	}
	if err := s.Open(&OpContext{Restore: blob}); err != nil {
		t.Fatal(err)
	}
	recs := s.Records()
	if len(recs) != 5 {
		t.Fatalf("restored sink holds %d records, want the checkpointed 5", len(recs))
	}
	for i, r := range recs {
		if r.Ts != int64(i) {
			t.Fatalf("record %d has Ts %d; rollback must keep the prefix intact", i, r.Ts)
		}
	}

	// A from-scratch restart (no restore blob) clears the sink entirely: the
	// replay will reproduce everything.
	if err := s.Open(&OpContext{}); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Records()); n != 0 {
		t.Fatalf("fresh-start Open left %d records, want 0", n)
	}

	// A cross-process restore (count exceeds what this instance holds) is a
	// no-op, never an out-of-range slice.
	if err := s.Open(&OpContext{Restore: blob}); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Records()); n != 0 {
		t.Fatalf("over-long restore fabricated %d records", n)
	}
}
