// Command streamline-worker executes one worker's share of a distributed
// STREAMLINE job. It dials the coordinator (cmd/streamline-coord), receives
// the plan, rebuilds the named pipeline from the shared registry, verifies
// the plan fingerprint, and runs its assigned subtasks over loopback TCP.
//
//	streamline-worker -coord 127.0.0.1:7171
//
// The dial retries with capped exponential backoff for -dial-timeout, so
// workers may start before the coordinator is listening. Under a supervised
// coordinator (streamline-coord -supervise) the worker also redials after
// every epoch restart, rejoining the recovered job until it completes.
package main

import (
	"context"
	"flag"
	"log"
	"time"

	"repro/internal/pipelines"
	"repro/streamline"
)

func main() {
	coord := flag.String("coord", "127.0.0.1:7171", "coordinator control address")
	dialTimeout := flag.Duration("dial-timeout", 10*time.Second, "how long to retry each dial")
	flag.Parse()

	pipelines.RegisterAll()
	err := streamline.RunRegisteredWorkerLoop(context.Background(), *coord,
		streamline.WithWorkerDialPolicy(streamline.DialPolicy{MaxWait: *dialTimeout}))
	if err != nil {
		log.Fatal(err)
	}
}
