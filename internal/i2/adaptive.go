package i2

import (
	"fmt"
	"sync"
)

// AdaptiveView is I2's "adaptive aggregation directly on the cluster": a
// live view whose viewport can be changed while the stream runs (the user
// zooms or pans during streaming). On a viewport switch the view answers
// the historical part of the new viewport from the Store (data at rest) and
// continues incrementally from the live stream (data in motion) — the
// hand-off the I2 development environment coordinates.
type AdaptiveView struct {
	mu    sync.Mutex
	store *Store
	vp    Viewport
	agg   *StreamAgg
	emit  func(Column)
	maxTs int64
}

// NewAdaptiveView creates a view over the store with an initial viewport.
// emit receives completed pixel columns (both backfilled and live).
func NewAdaptiveView(store *Store, vp Viewport, emit func(Column)) (*AdaptiveView, error) {
	if !vp.Valid() {
		return nil, fmt.Errorf("i2: invalid viewport %+v", vp)
	}
	v := &AdaptiveView{store: store, emit: emit}
	if store.Len() > 0 {
		_, last := store.Span()
		v.maxTs = last
	}
	v.switchTo(vp)
	return v, nil
}

// Viewport returns the current viewport.
func (v *AdaptiveView) Viewport() Viewport {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.vp
}

// SetViewport switches the view (zoom/pan). Completed columns of the new
// viewport that lie entirely in the past are emitted immediately from the
// history store; the live aggregator resumes for the remainder.
func (v *AdaptiveView) SetViewport(vp Viewport) error {
	if !vp.Valid() {
		return fmt.Errorf("i2: invalid viewport %+v", vp)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.switchTo(vp)
	return nil
}

// switchTo rebuilds the view state; the caller holds the lock (or is the
// constructor).
func (v *AdaptiveView) switchTo(vp Viewport) {
	v.vp = vp
	v.agg = NewStreamAgg(vp, v.emit)
	if v.maxTs <= vp.From {
		return
	}
	for _, c := range v.store.Query(vp) {
		cc := c
		switch {
		case c.T1 <= v.maxTs:
			// Entirely in the past: final, emit from history.
			v.emit(c)
		case c.T0 <= v.maxTs:
			// The column in progress: seed the live aggregator with its
			// historical partial so no points are lost across the switch
			// (M4 columns compose exactly).
			v.agg.cur = &cc
		}
	}
}

// OnPoint feeds one live in-order sample (also expected to be Append-ed to
// the store by the caller or by Server.Ingest).
func (v *AdaptiveView) OnPoint(p Point) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if p.Ts > v.maxTs {
		v.maxTs = p.Ts
	}
	// Skip points already covered by the backfill emitted at switch time.
	v.agg.OnPoint(p)
	v.agg.OnWatermark(p.Ts)
}
