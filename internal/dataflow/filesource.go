package dataflow

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
)

// File sources bring data at rest into the engine as plain streams that end —
// the same code path as data in motion. The unit of work is the byte-range
// Split (see split.go): each subtask pulls splits from the stage's shared
// ScanPlan, scans its split with a reused buffer, and snapshots
// (split id, byte offset), so restore Seeks straight to the position instead
// of re-reading the file from the start. Because any subtask can process any
// split, the snapshot state is not positional and a recovered job may run
// the source at a different parallelism — the remaining splits simply
// redistribute.

// maxLineBytes bounds a single line (4 MiB).
const maxLineBytes = 4 << 20

// LineDecode turns one line (without its newline) into a record; off is the
// byte offset of the line's first byte in its file (a scan restored from a
// pre-split snapshot passes the global row index instead — the legacy
// contract, so default timestamps keep their domain). The line buffer is
// only valid during the call. keep=false skips the line (blanks, comments).
type LineDecode func(line []byte, off int64) (r Record, keep bool, err error)

// RowDecode turns one CSV row into a record; off is the byte offset of the
// row's first byte in its file (row index under a legacy restore, like
// LineDecode). The row slice is only valid during the call.
type RowDecode func(row []string, off int64) (r Record, err error)

// ScanConfig describes one at-rest scan for the factory helpers below.
type ScanConfig struct {
	// Input is a literal file path, a directory, or a filepath.Match glob.
	Input string
	// SplitSize is the target split length in bytes (<= 0 uses
	// DefaultSplitSize).
	SplitSize int64
	// Header marks the first CSV row of every file as a header to skip
	// (CSV factories only).
	Header bool
}

// LineSourceFactory returns a SourceFactory scanning newline-delimited
// files. All subtasks of one execution share a single ScanPlan — the
// factory creates a fresh plan when subtask 0 is instantiated (the runtime
// builds subtasks in order), so re-running a graph re-plans the scan.
func LineSourceFactory(cfg ScanConfig, decode LineDecode) SourceFactory {
	var plan *ScanPlan
	return func(sub, par int) SourceFunc {
		if sub == 0 || plan == nil {
			plan = &ScanPlan{Inputs: []string{cfg.Input}, SplitSize: cfg.SplitSize}
		}
		return &FileScanSource{Plan: plan, Subtask: sub, Parallelism: par, DecodeLine: decode}
	}
}

// CSVSourceFactory returns a SourceFactory scanning CSV files, planned with
// quote-aware splits (see ScanPlan.CSV). Plan sharing works like
// LineSourceFactory.
func CSVSourceFactory(cfg ScanConfig, decode RowDecode) SourceFactory {
	var plan *ScanPlan
	return func(sub, par int) SourceFunc {
		if sub == 0 || plan == nil {
			plan = &ScanPlan{Inputs: []string{cfg.Input}, SplitSize: cfg.SplitSize, CSV: true, Header: cfg.Header}
		}
		return &FileScanSource{Plan: plan, Subtask: sub, Parallelism: par, DecodeRow: decode}
	}
}

// FileScanSource is one subtask of a splittable at-rest scan. Exactly one of
// DecodeLine / DecodeRow must be set, matching the plan's mode (DecodeRow
// requires Plan.CSV). All subtasks of a stage must share the same Plan.
type FileScanSource struct {
	Plan                 *ScanPlan
	Subtask, Parallelism int
	DecodeLine           LineDecode
	DecodeRow            RowDecode

	err  error
	done bool

	// current split
	cur      splitCursor
	hasCur   bool
	startOff int64 // where consumption of cur began (metrics)
	f        *os.File
	path     string // path f is open on
	rd       *bufio.Reader
	cr       *csv.Reader
	base     int64 // absolute offset cr started at (CSV mode)
	off      int64 // absolute offset of the next unread byte (line mode)
	lineBuf  []byte

	completed []int

	// legacy round-robin mode (restored from a pre-split snapshot)
	legacy     bool
	legacyNext int64 // restore target: skip rows below this global index
	legacyCur  int64 // global index of the next row
	legacyOpen bool

	// scan observability (OpenSource): counters are per source node, deltas
	// are accumulated locally and flushed at split boundaries and snapshots.
	mRecords, mBytes, mSplits          *metrics.Counter
	pendRecords, pendBytes, pendSplits int64
}

// OpenSource implements SourceOpener: the runtime hands the subtask's
// OpContext before restore and the first Next, and the scan registers its
// per-node observability counters on it.
func (s *FileScanSource) OpenSource(ctx *OpContext) {
	s.Plan.SetOwnedSubtasks(ctx.LocalSubtasks, ctx.Parallelism)
	if ctx.Metrics == nil {
		return
	}
	s.mRecords = ctx.Metrics.Counter("node." + ctx.NodeName + ".records_out")
	s.mBytes = ctx.Metrics.Counter("node." + ctx.NodeName + ".bytes_scanned")
	s.mSplits = ctx.Metrics.Counter("node." + ctx.NodeName + ".splits_completed")
}

// flushMetrics publishes the locally accumulated counter deltas.
func (s *FileScanSource) flushMetrics() {
	if s.mRecords != nil && s.pendRecords != 0 {
		s.mRecords.Add(s.pendRecords)
		s.pendRecords = 0
	}
	if s.mBytes != nil && s.pendBytes != 0 {
		s.mBytes.Add(s.pendBytes)
		s.pendBytes = 0
	}
	if s.mSplits != nil && s.pendSplits != 0 {
		s.mSplits.Add(s.pendSplits)
		s.pendSplits = 0
	}
}

// Unordered reports that a split scan does not emit records in timestamp
// order: splits are assigned dynamically, so one subtask's stream may jump
// backward in file position between splits. Event time over a split scan is
// closed out at end of stream (or a composite's handoff watermark), not by
// in-flight cadence watermarks.
func (s *FileScanSource) Unordered() bool { return true }

// Err implements Failable.
func (s *FileScanSource) Err() error { return s.err }

func (s *FileScanSource) fail(err error) (Record, bool) {
	s.err = err
	s.closeFile()
	return Record{}, false
}

func (s *FileScanSource) closeFile() {
	if s.f != nil {
		s.f.Close()
		s.f, s.path, s.cr = nil, "", nil
	}
}

// openAt positions the reader at the absolute offset in path, reusing the
// open file handle when the path matches.
func (s *FileScanSource) openAt(path string, off int64) error {
	if s.f == nil || s.path != path {
		s.closeFile()
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		s.f = f
		s.path = path
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	if s.rd == nil {
		s.rd = bufio.NewReaderSize(s.f, 64*1024)
	} else {
		s.rd.Reset(s.f)
	}
	s.cr = nil
	s.off = off
	return nil
}

// readLine reads one line at s.off, returning its start offset and the line
// without its newline (a trailing \r is stripped, like bufio.Scanner).
// ok=false means clean end of file.
func (s *FileScanSource) readLine() (line []byte, start int64, ok bool, err error) {
	start = s.off
	s.lineBuf = s.lineBuf[:0]
	for {
		chunk, rerr := s.rd.ReadSlice('\n')
		s.off += int64(len(chunk))
		if rerr == bufio.ErrBufferFull {
			if len(s.lineBuf)+len(chunk) > maxLineBytes {
				return nil, start, false, fmt.Errorf("line at offset %d exceeds %d bytes", start, maxLineBytes)
			}
			s.lineBuf = append(s.lineBuf, chunk...)
			continue
		}
		if rerr != nil && rerr != io.EOF {
			return nil, start, false, rerr
		}
		if len(s.lineBuf) > 0 {
			s.lineBuf = append(s.lineBuf, chunk...)
			line = s.lineBuf
		} else {
			line = chunk
		}
		if len(line) == 0 && rerr == io.EOF {
			return nil, start, false, nil
		}
		if n := len(line); n > 0 && line[n-1] == '\n' {
			line = line[:n-1]
		}
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		return line, start, true, nil
	}
}

// openSplit positions the reader at the split's first record. A fresh split
// (offset < 0) aligns: reading starts at Start-1 and the partial line is
// discarded (it belongs to the split it starts in), the standard byte-range
// alignment trick; a resumed split Seeks straight to the recorded record
// boundary — the O(remaining split) restore path.
func (s *FileScanSource) openSplit(c splitCursor) error {
	s.cur, s.hasCur = c, true
	sp := c.split
	// startOff anchors the bytes_scanned accounting: fresh splits count from
	// their range start (splits tile the input, so the per-node sum equals
	// the total input size), resumed splits from the resume position.
	if c.offset >= 0 {
		if err := s.openAt(sp.Path, c.offset); err != nil {
			return err
		}
		s.startOff = c.offset
	} else if sp.Start == 0 {
		if err := s.openAt(sp.Path, 0); err != nil {
			return err
		}
		s.startOff = 0
	} else {
		if err := s.openAt(sp.Path, sp.Start-1); err != nil {
			return err
		}
		if _, _, _, err := s.readLine(); err != nil {
			return err
		}
		s.startOff = sp.Start
	}
	if s.Plan.CSV {
		// The alignment path reads through the buffered reader, which may
		// have pulled the file position ahead of s.off; re-anchor the file
		// before handing it to the CSV parser, whose InputOffset is relative
		// to this base.
		if _, err := s.f.Seek(s.off, io.SeekStart); err != nil {
			return err
		}
		s.base = s.off
		s.cr = csv.NewReader(s.f)
		s.cr.FieldsPerRecord = -1
		if s.Plan.Header && s.off == 0 {
			if _, err := s.cr.Read(); err != nil && err != io.EOF {
				return fmt.Errorf("header: %w", err)
			}
		}
	}
	return nil
}

// curOffset returns the absolute offset of the next unread record of the
// current split.
func (s *FileScanSource) curOffset() int64 {
	if s.Plan.CSV && s.cr != nil {
		return s.base + s.cr.InputOffset()
	}
	return s.off
}

// completeSplit retires the current split.
func (s *FileScanSource) completeSplit() {
	s.completed = append(s.completed, s.cur.split.ID)
	s.pendSplits++
	s.pendBytes += s.cur.split.End - s.startOff
	s.hasCur = false
	s.flushMetrics()
}

// Next implements SourceFunc.
func (s *FileScanSource) Next() (Record, bool) {
	if s.err != nil || s.done {
		return Record{}, false
	}
	if s.legacy {
		return s.nextLegacy()
	}
	for {
		if !s.hasCur {
			c, ok, err := s.Plan.acquire()
			if err != nil {
				return s.fail(err)
			}
			if !ok {
				s.done = true
				s.closeFile()
				s.flushMetrics()
				return Record{}, false
			}
			if err := s.openSplit(c); err != nil {
				return s.fail(fmt.Errorf("scan %q split %d: %w", c.split.Path, c.split.ID, err))
			}
		}
		r, ok, err := s.nextInSplit()
		if err != nil {
			return s.fail(err)
		}
		if ok {
			s.pendRecords++
			return r, true
		}
		s.completeSplit()
	}
}

// nextInSplit emits the next record of the current split; ok=false means the
// split is exhausted (a record starting before End is consumed entirely,
// even when it extends past it).
func (s *FileScanSource) nextInSplit() (Record, bool, error) {
	sp := s.cur.split
	if s.Plan.CSV {
		start := s.base + s.cr.InputOffset()
		if start >= sp.End {
			return Record{}, false, nil
		}
		row, err := s.cr.Read()
		if err == io.EOF {
			return Record{}, false, nil
		}
		if err != nil {
			return Record{}, false, fmt.Errorf("csv %q: %w", sp.Path, err)
		}
		r, derr := s.DecodeRow(row, start)
		if derr != nil {
			return Record{}, false, fmt.Errorf("csv %q offset %d: %w", sp.Path, start, derr)
		}
		return r, true, nil
	}
	for s.off < sp.End {
		line, start, ok, err := s.readLine()
		if err != nil {
			return Record{}, false, fmt.Errorf("scan %q: %w", sp.Path, err)
		}
		if !ok {
			return Record{}, false, nil
		}
		r, keep, derr := s.DecodeLine(line, start)
		if derr != nil {
			return Record{}, false, fmt.Errorf("scan %q offset %d: %w", sp.Path, start, derr)
		}
		if !keep {
			continue
		}
		return r, true, nil
	}
	return Record{}, false, nil
}

// ---- legacy round-robin mode ----------------------------------------------

// nextLegacy replays the pre-split behavior for sources restored from an old
// fileCursorState snapshot: one file, rows assigned round-robin by global
// index, scanning from the start and skipping rows below the restore target.
// The decode callback receives the global row *index* as its offset — the
// pre-split contract — so default event timestamps stay in the row-index
// domain the job's checkpointed downstream state was built in. The job keeps
// this mode (and its positional snapshots) until it completes; fresh
// executions plan splits.
func (s *FileScanSource) nextLegacy() (Record, bool) {
	par := s.Parallelism
	if par <= 0 {
		par = 1
	}
	if !s.legacyOpen {
		path, err := s.Plan.legacyInput()
		if err != nil {
			return s.fail(err)
		}
		if err := s.openAt(path, 0); err != nil {
			return s.fail(fmt.Errorf("scan %q: %w", path, err))
		}
		s.legacyCur = 0
		if s.Plan.CSV {
			s.base = 0
			s.cr = csv.NewReader(s.f)
			s.cr.FieldsPerRecord = -1
			if s.Plan.Header {
				if _, err := s.cr.Read(); err != nil && err != io.EOF {
					return s.fail(fmt.Errorf("csv %q: header: %w", path, err))
				}
			}
		}
		s.legacyOpen = true
	}
	for {
		var (
			line []byte
			row  []string
		)
		if s.Plan.CSV {
			rw, err := s.cr.Read()
			if err == io.EOF {
				s.legacyEnd()
				return Record{}, false
			}
			if err != nil {
				return s.fail(fmt.Errorf("csv %q: %w", s.path, err))
			}
			row = rw
		} else {
			l, _, ok, err := s.readLine()
			if err != nil {
				return s.fail(fmt.Errorf("scan %q: %w", s.path, err))
			}
			if !ok {
				s.legacyEnd()
				return Record{}, false
			}
			line = l
		}
		idx := s.legacyCur
		s.legacyCur++
		if idx < s.legacyNext || idx%int64(par) != int64(s.Subtask%par) {
			continue
		}
		if s.Plan.CSV {
			r, err := s.DecodeRow(row, idx)
			if err != nil {
				return s.fail(fmt.Errorf("csv %q row %d: %w", s.path, idx+1, err))
			}
			s.pendRecords++
			return r, true
		}
		r, keep, err := s.DecodeLine(line, idx)
		if err != nil {
			return s.fail(fmt.Errorf("scan %q line %d: %w", s.path, idx+1, err))
		}
		if !keep {
			continue
		}
		s.pendRecords++
		return r, true
	}
}

// legacyEnd finishes the legacy scan, recording the end position so a later
// snapshot does not replay the file (mirrors the pre-split close behavior).
// curOffset covers both modes (the CSV parser tracks consumption through
// InputOffset, not s.off).
func (s *FileScanSource) legacyEnd() {
	s.done = true
	s.legacyNext = s.legacyCur
	s.legacyOpen = false
	s.pendBytes += s.curOffset()
	s.closeFile()
	s.flushMetrics()
}

// ---- snapshot / restore ----------------------------------------------------

// Snapshot implements SourceFunc: the versioned split-scan state (see
// splitScanState). Restore Seeks, it does not re-scan.
func (s *FileScanSource) Snapshot() ([]byte, error) {
	s.flushMetrics()
	if s.legacy {
		next := s.legacyCur
		if !s.legacyOpen {
			next = s.legacyNext
		}
		return encodeScanState(splitScanState{V: splitStateVersion, CurID: -1, Legacy: next})
	}
	st := splitScanState{V: splitStateVersion, Completed: s.completed, CurID: -1, Legacy: -1}
	if s.hasCur {
		st.CurID = s.cur.split.ID
		st.CurPath = s.cur.split.Path
		st.CurOff = s.curOffset()
	}
	if s.Subtask == 0 {
		// Like the completed-ID carry, subtask 0 keeps the restored
		// in-flight cursors that no subtask has re-acquired yet alive in the
		// checkpoint — otherwise a second recovery would re-scan those
		// splits from their start. It also records the plan geometry, so a
		// restore against differently-chopped inputs fails loudly instead of
		// remapping split IDs onto different byte ranges.
		st.Pending = s.Plan.pendingResumed()
		sig, err := s.Plan.signature()
		if err != nil {
			return nil, err
		}
		st.Plan = sig
	}
	return encodeScanState(st)
}

var (
	_ MultiRestorable = (*FileScanSource)(nil)
	_ SourceOpener    = (*FileScanSource)(nil)
	_ Failable        = (*FileScanSource)(nil)
)

// Restore implements SourceFunc for a single-subtask stage; it is shorthand
// for RestoreAll with only this subtask's blob. Stages with more than one
// subtask must restore through RestoreAll so the shared plan sees every
// subtask's completed and in-flight splits.
func (s *FileScanSource) Restore(blob []byte) error {
	return s.RestoreAll(s.Subtask, s.Parallelism, map[int][]byte{s.Subtask: blob})
}

// RestoreAll implements MultiRestorable: blobs carries the snapshot of every
// subtask of the checkpointing job, keyed by its old subtask index. The
// shared plan rebuilds the split queue once (pending = planned − completed,
// in-flight splits resume at their byte offsets), so the restoring stage may
// run at any parallelism. Legacy (pre-split) snapshots convert to
// round-robin cursors and require the original parallelism.
func (s *FileScanSource) RestoreAll(subtask, parallelism int, blobs map[int][]byte) error {
	if subtask != s.Subtask || parallelism != s.Parallelism {
		return fmt.Errorf("scan restore: RestoreAll(%d/%d) does not match the reader's subtask %d/%d", subtask, parallelism, s.Subtask, s.Parallelism)
	}
	if err := s.Plan.restoreFrom(blobs, s.Parallelism); err != nil {
		return err
	}
	s.closeFile()
	s.err, s.done, s.hasCur = nil, false, false
	s.completed = nil
	next, legacyMode, carry := s.Plan.restoredState(s.Subtask)
	if legacyMode {
		s.legacy, s.legacyNext, s.legacyOpen = true, next, false
		return nil
	}
	s.legacy = false
	s.completed = carry
	return nil
}
