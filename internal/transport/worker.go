package transport

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/metrics"
)

// BuildFunc rebuilds the pipeline graph inside a worker process. SPMD:
// the wire cannot carry operator closures, so the worker constructs the
// graph from code — from a pipeline registry keyed by the plan's pipeline
// name, or (self-spawned workers) by re-running the exact construction the
// parent ran. It returns the graph and the chaining flag, both of which
// must reproduce the coordinator's plan bit for bit.
type BuildFunc func(pipeline string, args []string) (*dataflow.Graph, bool, error)

// RunWorker executes one worker's share of a distributed job: dial the
// coordinator, receive the plan, rebuild the graph, verify the fingerprint,
// run the assigned subtasks with a TCP mesh carrying the cross-participant
// edges, and stream checkpoint acks back. It returns when the share
// completes (nil), the coordinator aborts or disappears, or ctx is
// cancelled. reg may be nil to disable metrics.
func RunWorker(ctx context.Context, coordAddr string, reg *metrics.Registry, build BuildFunc) error {
	RegisterTypes()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	conn, err := net.Dial("tcp", coordAddr)
	if err != nil {
		return fmt.Errorf("worker: dial coordinator: %w", err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	enc := gob.NewEncoder(bw)
	var sendMu sync.Mutex
	send := func(msg ctrlMsg) error {
		sendMu.Lock()
		defer sendMu.Unlock()
		if err := enc.Encode(msg); err != nil {
			return err
		}
		return bw.Flush()
	}
	dec := gob.NewDecoder(conn)

	// The data listener binds before the graph exists so its address can
	// ride in the hello; the mesh adopts it once the plan arrives.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("worker: data listen: %w", err)
	}
	if err := send(ctrlMsg{Kind: ctrlHello, Addr: ln.Addr().String()}); err != nil {
		ln.Close()
		return fmt.Errorf("worker: hello: %w", err)
	}
	var planEnv ctrlMsg
	if err := dec.Decode(&planEnv); err != nil {
		ln.Close()
		return fmt.Errorf("worker: receive plan: %w", err)
	}
	if planEnv.Kind != ctrlPlan || planEnv.Plan == nil {
		ln.Close()
		return fmt.Errorf("worker: expected plan, got message kind %d", planEnv.Kind)
	}
	p := planEnv.Plan

	// Refuse to run rather than exchange streams against a different plan:
	// a fingerprint mismatch means divergent binaries or arguments.
	abort := func(err error) error {
		_ = send(ctrlMsg{Kind: ctrlDone, Err: err.Error()})
		ln.Close()
		return err
	}
	g, chaining, err := build(p.Pipeline, p.Args)
	if err != nil {
		return abort(fmt.Errorf("worker: build pipeline %q: %w", p.Pipeline, err))
	}
	if fp := core.SpecOf(g, chaining).Fingerprint(); fp != p.Fingerprint {
		return abort(fmt.Errorf("worker: plan fingerprint mismatch: local %.12s vs coordinator %.12s", fp, p.Fingerprint))
	}

	mesh := NewMesh(p.Self, ln, g, reg)
	defer mesh.Close()
	mesh.SetPeers(p.DataAddrs)

	triggers := make(chan int64, 16)
	acks := make(chan dataflow.Ack, 256)

	opts := []dataflow.JobOption{dataflow.WithChaining(chaining)}
	if reg != nil {
		opts = append(opts, dataflow.WithMetrics(reg))
	}
	jb := dataflow.NewJob(g, opts...)
	if p.Restore != nil {
		jb.SetRestore(p.Restore)
	}

	// Control reader: start opens the dial gate, triggers inject barriers,
	// stop (or a dropped connection) cancels the local share.
	ctrlErr := make(chan error, 1)
	go func() {
		for {
			var msg ctrlMsg
			if err := dec.Decode(&msg); err != nil {
				ctrlErr <- fmt.Errorf("worker: coordinator connection lost: %w", err)
				cancel()
				return
			}
			switch msg.Kind {
			case ctrlStart:
				mesh.Start()
			case ctrlTrigger:
				select {
				case triggers <- msg.Ckpt:
				case <-ctx.Done():
					return
				}
			case ctrlStop:
				if msg.Err != "" {
					ctrlErr <- fmt.Errorf("worker: stopped by coordinator: %s", msg.Err)
				} else {
					ctrlErr <- nil
				}
				cancel()
				return
			}
		}
	}()
	// Ack pump: local subtask acknowledgements stream to the coordinator.
	go func() {
		for {
			select {
			case a := <-acks:
				if err := send(ctrlMsg{Kind: ctrlAck, Ack: &a}); err != nil {
					cancel()
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	// A broken data plane is a job failure even while control is healthy.
	go func() {
		select {
		case <-mesh.Failed():
			cancel()
		case <-ctx.Done():
		}
	}()

	runErr := jb.RunParticipant(ctx, &dataflow.Participation{
		Self:      p.Self,
		Placement: p.Placement,
		Transport: mesh,
		Triggers:  triggers,
		Acks:      acks,
		OnRunning: func() { _ = send(ctrlMsg{Kind: ctrlReady}) },
	})
	if runErr == nil {
		// Flush the remote Ends before reporting done.
		mesh.DrainOutbound()
	}
	// Prefer the specific cause over a bare context.Canceled.
	if merr := mesh.Err(); merr != nil && (runErr == nil || runErr == context.Canceled) {
		runErr = merr
	}
	select {
	case cerr := <-ctrlErr:
		if cerr != nil && (runErr == nil || runErr == context.Canceled) {
			runErr = cerr
		}
	default:
	}
	msg := ""
	if runErr != nil {
		msg = runErr.Error()
	}
	_ = send(ctrlMsg{Kind: ctrlDone, Err: msg})
	return runErr
}
