// Quickstart: the smallest complete STREAMLINE pipeline, on the typed API.
//
// One program, one engine: a bounded generator ("data at rest") flows
// through keyBy -> windowed aggregation -> collect. Swap the source for an
// unbounded one and nothing else changes — that is the paper's uniform
// programming model. Every stage is a streamline.Stream[T]; records are
// streamline.Keyed[T] values, so no type assertions appear anywhere.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/streamline"
)

// reading is one sensor sample.
type reading struct {
	Sensor uint64
	Value  float64
}

func main() {
	env := streamline.New(streamline.WithParallelism(2))

	// 10k sensor readings from 4 sensors, one per millisecond. Generator is
	// a connector; swapping it for Channel (live) or JSONL (a file of
	// history) — or a Hybrid of both — changes nothing downstream.
	readings := streamline.From(env, "sensors", streamline.Generator(10_000,
		func(sub, par int, i int64) streamline.Keyed[reading] {
			sensor := uint64(i % 4)
			value := float64(sensor*10) + float64(i%7)
			return streamline.Keyed[reading]{Ts: i, Value: reading{Sensor: sensor, Value: value}}
		}), streamline.WithSourceParallelism(1))

	// Per-sensor tumbling 1s averages — Cutty shares the aggregation work
	// if more queries are added to the same WindowAggregate call.
	perSensor := streamline.KeyBy(readings, "sensor", func(r reading) uint64 { return r.Sensor })
	values := streamline.Map(perSensor, "value", func(r reading) float64 { return r.Value })
	results := streamline.Collect(
		streamline.WindowAggregate(values, "avg-1s",
			streamline.Query(streamline.Tumbling(1000), streamline.Avg()),
		), "out")

	if err := env.Execute(context.Background()); err != nil {
		log.Fatal(err)
	}

	byWindow := map[int64]map[uint64]float64{}
	for _, r := range results.Records() {
		if byWindow[r.Value.Start] == nil {
			byWindow[r.Value.Start] = map[uint64]float64{}
		}
		byWindow[r.Value.Start][r.Key] = r.Value.Value
	}
	fmt.Printf("windows: %d (10 seconds of data, tumbling 1s, 4 sensors)\n", len(byWindow))
	for start := int64(0); start < 3000; start += 1000 {
		fmt.Printf("window [%4d,%4d):", start, start+1000)
		for s := uint64(0); s < 4; s++ {
			fmt.Printf("  sensor%d=%.2f", s, byWindow[start][s])
		}
		fmt.Println()
	}
	fmt.Println("... (remaining windows omitted)")
}
